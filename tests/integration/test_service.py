"""Integration tests for the campaign server, over real sockets.

The server runs on a private event loop in a daemon thread; tests drive
it with stdlib HTTP clients from a thread pool, exactly as external
clients would.  The load-bearing assertions are the service's two
contracts:

* **Byte identity** — a ``POST /measure`` response body equals
  ``json.dumps(result.as_record())`` of a sequential ``Study.run``, under
  coalescing, parallel dispatch, fault injection, and store warm-starts.
* **One engine execution** — N concurrent identical requests cause
  exactly one measurement (asserted via the study cache-miss counter,
  which only the real measurement path increments).
"""

import asyncio
import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.study import Study, run_fingerprint
from repro.hardware.catalog import ATOM_45, CORE2DUO_45, CORE_I7_45
from repro.hardware.config import stock
from repro.obs.metrics import default_registry
from repro.service.server import CampaignServer
from repro.service.store import ResultStore
from repro.workloads.catalog import benchmark


def _cache_misses() -> float:
    return default_registry().get("repro_study_cache_misses_total").value


class _LiveServer:
    """A CampaignServer running on its own loop in a daemon thread."""

    def __init__(self, server: CampaignServer) -> None:
        self.server = server
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, name="repro-test-server", daemon=True
        )

    def __enter__(self) -> "_LiveServer":
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop
        ).result(timeout=30)
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()

    def shutdown(self) -> dict:
        if self.server.scheduler.draining:
            return {}
        return asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self.loop
        ).result(timeout=60)

    # -- stdlib HTTP client ----------------------------------------------------

    def request(self, method: str, path: str, body: dict | None = None,
                headers: dict | None = None):
        """Returns (status, headers, body bytes); HTTP errors included."""
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.server.port}{path}",
            data=json.dumps(body).encode() if body is not None else None,
            headers=headers or {},
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()

    def measure(self, body: dict, headers: dict | None = None):
        return self.request("POST", "/measure", body, headers)


def _quick_study(references, **kwargs) -> Study:
    return Study(references=references, invocation_scale=0.2, **kwargs)


MEASURE_MCF_I7 = {"benchmark": "mcf", "processor": "i7_45"}


class TestCoalescingByteIdentity:
    def test_concurrent_identical_posts_measure_once(self, references):
        """The tentpole acceptance test: N parallel identical POSTs are
        one engine execution, and every response body is byte-identical
        to the sequential Study.run record."""
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            misses_before = _cache_misses()
            with ThreadPoolExecutor(max_workers=8) as pool:
                outcomes = list(
                    pool.map(lambda _: live.measure(MEASURE_MCF_I7), range(8))
                )
            misses_after = _cache_misses()

        assert [status for status, _, _ in outcomes] == [200] * 8
        assert misses_after - misses_before == 1  # exactly one measurement

        sequential = (
            _quick_study(references)
            .run([stock(CORE_I7_45)], [benchmark("mcf")])
            .single()
        )
        expected = json.dumps(sequential.as_record()).encode("utf-8")
        for _, _, body in outcomes:
            assert body == expected

    def test_parallel_dispatch_preserves_bytes(self, references):
        """Distinct concurrent requests batch through the parallel
        executor (jobs=2) and still serve sequential-run bytes."""
        requests = [
            {"benchmark": "mcf", "processor": "i7_45"},
            {"benchmark": "db", "processor": "atom_45"},
            {"benchmark": "mcf", "processor": "atom_45"},
            {"benchmark": "db", "processor": "c2d_45"},
        ]
        server = CampaignServer(
            study=_quick_study(references, reuse_pool=True), jobs=2
        )
        with _LiveServer(server) as live:
            with ThreadPoolExecutor(max_workers=4) as pool:
                outcomes = list(pool.map(live.measure, requests))

        assert [status for status, _, _ in outcomes] == [200] * 4
        reference_study = _quick_study(references)
        for spec, (_, _, body) in zip(requests, outcomes):
            expected = reference_study.measure(
                benchmark(spec["benchmark"]),
                stock(
                    {
                        "i7_45": CORE_I7_45,
                        "atom_45": ATOM_45,
                        "c2d_45": CORE2DUO_45,
                    }[spec["processor"]]
                ),
            )
            assert body == json.dumps(expected.as_record()).encode("utf-8")

    def test_fault_armed_request_serves_fault_free_bytes(self, references):
        """A fail-stop fault plan retries to the identical record."""
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            status, _, body = live.measure({**MEASURE_MCF_I7, "inject": "ci"})
        assert status == 200
        clean = _quick_study(references).measure(
            benchmark("mcf"), stock(CORE_I7_45)
        )
        assert body == json.dumps(clean.as_record()).encode("utf-8")


class TestAdmissionControl:
    def test_rate_limited_client_gets_429_with_retry_after(self, references):
        server = CampaignServer(
            study=_quick_study(references), rate=0.001, burst=1.0
        )
        with _LiveServer(server) as live:
            first = live.measure(MEASURE_MCF_I7, {"X-Client-Id": "impatient"})
            second = live.measure(MEASURE_MCF_I7, {"X-Client-Id": "impatient"})
            other = live.measure(MEASURE_MCF_I7, {"X-Client-Id": "patient"})
        assert first[0] == 200
        assert second[0] == 429
        assert int(second[1]["Retry-After"]) >= 1
        assert other[0] == 200  # budgets are per client

    def test_draining_server_rejects_new_measurements(self, references):
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            live.shutdown()  # drain completes; listener still answers
            # (the socket closes with the drain, so expect refusal either
            # at HTTP (503) or connection level)
            try:
                status, _, _ = live.measure(MEASURE_MCF_I7)
                assert status == 503
            except (urllib.error.URLError, ConnectionError):
                pass


class TestStoreWarmStart:
    def test_restart_serves_identical_bytes_without_remeasuring(
        self, references, tmp_path
    ):
        path = tmp_path / "campaign.sqlite"
        fingerprint = run_fingerprint(0.2)

        with _LiveServer(
            CampaignServer(
                study=_quick_study(references),
                store=path,
                fingerprint=fingerprint,
            )
        ) as live:
            status, _, first_body = live.measure(MEASURE_MCF_I7)
            assert status == 200

        # Fresh study, same store: the record must come back from the
        # warm-started cache without a single engine execution.
        misses_before = _cache_misses()
        with _LiveServer(
            CampaignServer(
                study=_quick_study(references),
                store=path,
                fingerprint=fingerprint,
            )
        ) as live:
            assert live.server.restored == 1
            status, _, second_body = live.measure(MEASURE_MCF_I7)
            assert status == 200
        assert second_body == first_body
        assert _cache_misses() - misses_before == 0

    def test_mismatched_fingerprint_refuses_startup(self, references, tmp_path):
        from repro.service.store import StoreError

        path = tmp_path / "campaign.sqlite"
        with ResultStore(path) as store:
            store.check_fingerprint(run_fingerprint(1.0))
        live = _LiveServer(
            CampaignServer(
                study=_quick_study(references),
                store=path,
                fingerprint=run_fingerprint(0.2),
            )
        )
        with pytest.raises(StoreError, match="different run"):
            with live:
                pass  # pragma: no cover - start() must refuse


class TestQueryEndpoints:
    @pytest.fixture()
    def live(self, references):
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            for spec in (
                MEASURE_MCF_I7,
                {"benchmark": "db", "processor": "i7_45"},
                {"benchmark": "mcf", "processor": "atom_45"},
                {"benchmark": "db", "processor": "atom_45"},
            ):
                status, _, _ = live.measure(spec)
                assert status == 200
            yield live

    def test_results_lists_stored_records(self, live):
        status, _, body = live.request("GET", "/results")
        assert status == 200
        payload = json.loads(body)
        assert payload["count"] == 4
        status, _, body = live.request("GET", "/results?benchmark=mcf")
        assert {r["benchmark"] for r in json.loads(body)["results"]} == {"mcf"}

    def test_pareto_flags_non_dominated_configurations(self, live):
        status, _, body = live.request("GET", "/pareto")
        assert status == 200
        payload = json.loads(body)
        assert payload["count"] == 2  # two configurations measured
        efficient = [p for p in payload["points"] if p["efficient"]]
        assert efficient  # a frontier always exists
        for point in payload["points"]:
            assert point["performance"] > 0
            assert point["normalized_energy"] > 0

    def test_healthz_reports_campaign_state(self, live):
        status, _, body = live.request("GET", "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["completed"] == 4
        assert health["store_records"] == 4

    def test_metrics_exposition_includes_service_counters(self, live):
        status, headers, body = live.request("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "repro_service_jobs_total" in text
        assert "repro_store_writes_total" in text


class TestProtocolErrors:
    @pytest.fixture()
    def live(self, references):
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            yield live

    def test_unknown_route_is_404(self, live):
        assert live.request("GET", "/nope")[0] == 404

    def test_wrong_method_is_405(self, live):
        assert live.request("GET", "/measure")[0] == 405

    def test_unknown_benchmark_is_400(self, live):
        status, _, body = live.measure({"benchmark": "nope", "processor": "i7_45"})
        assert status == 400
        assert "unknown benchmark" in json.loads(body)["error"]

    def test_unknown_configuration_key_is_400(self, live):
        status, _, _ = live.measure({"benchmark": "mcf", "config": "bogus"})
        assert status == 400

    def test_unsupported_knob_is_400(self, live):
        status, _, body = live.measure(
            {"benchmark": "mcf", "processor": "i7_45", "cores": 128}
        )
        assert status == 400
        assert "unsupported configuration" in json.loads(body)["error"]

    def test_malformed_json_body_is_400(self, live):
        status, _, _ = live.request("POST", "/measure", None)
        # no body at all parses as {}, which is missing 'benchmark'
        assert status == 400

    def test_corrupting_plan_is_400(self, live):
        status, _, body = live.measure({**MEASURE_MCF_I7, "inject": "demo"})
        assert status == 400
        assert "fail-stop" in json.loads(body)["error"]

    def test_mismatched_iterations_is_400(self, live):
        status, _, body = live.measure({**MEASURE_MCF_I7, "iterations": 999})
        assert status == 400
        assert "fixed by the measurement protocol" in json.loads(body)["error"]

    def test_matching_iterations_is_accepted(self, live, references):
        planned = _quick_study(references).scaled_invocations(benchmark("mcf"))
        status, _, _ = live.measure({**MEASURE_MCF_I7, "iterations": planned})
        assert status == 200

    def test_configuration_key_lookup_measures(self, live):
        status, _, body = live.measure(
            {"benchmark": "mcf", "config": "i7_45/4C2T@2.66+TB"}
        )
        assert status == 200
        assert json.loads(body)["configuration"] == "i7_45/4C2T@2.66+TB"


def _header(headers: dict, name: str) -> str | None:
    for key, value in headers.items():
        if key.lower() == name.lower():
            return value
    return None


def _span_names(trace: dict) -> set:
    return {span["name"] for span in trace["spans"]}


class TestRequestTracing:
    """The tentpole acceptance tests: every served /measure has a span
    tree covering coordinator and worker processes with zero orphans,
    and tracing never perturbs the response bytes."""

    REQUESTS = (
        {"benchmark": "mcf", "processor": "i7_45"},
        {"benchmark": "db", "processor": "atom_45"},
        {"benchmark": "db", "processor": "c2d_45"},
    )

    def _trace_of(self, live, headers):
        request_id = _header(headers, "X-Request-Id")
        assert request_id, "measure responses must carry X-Request-Id"
        status, _, body = live.request("GET", f"/trace/{request_id}")
        assert status == 200
        return json.loads(body)

    @pytest.mark.parametrize("jobs", (1, 2, 4))
    def test_span_tree_spans_all_layers_with_zero_orphans(
        self, references, jobs
    ):
        server = CampaignServer(
            study=_quick_study(references, reuse_pool=True), jobs=jobs
        )
        reference_study = _quick_study(references)
        with _LiveServer(server) as live:
            with ThreadPoolExecutor(max_workers=3) as pool:
                outcomes = list(pool.map(live.measure, self.REQUESTS))
            for spec, (status, headers, body) in zip(self.REQUESTS, outcomes):
                assert status == 200
                # Byte identity holds with tracing armed at any jobs count.
                expected = reference_study.measure(
                    benchmark(spec["benchmark"]),
                    stock(
                        {
                            "i7_45": CORE_I7_45,
                            "atom_45": ATOM_45,
                            "c2d_45": CORE2DUO_45,
                        }[spec["processor"]]
                    ),
                )
                assert body == json.dumps(expected.as_record()).encode()

                trace = self._trace_of(live, headers)
                assert trace["orphans"] == []
                assert trace["span_count"] >= 4
                root = trace["root"]
                assert root is not None and root["name"] == "http.request"
                assert root["attributes"]["status"] == 200
                names = _span_names(trace)
                assert {
                    "service.admission",
                    "service.submit",
                    "service.schedule",
                } <= names
                # The request's own measurement landed in its tree, and
                # only its own: every measurement span carries this
                # request's benchmark.
                measured = [
                    span["attributes"]["benchmark"]
                    for span in trace["spans"]
                    if span["name"] in ("study.measure", "executor.chunk")
                ]
                assert measured
                assert set(measured) == {spec["benchmark"]}

    def test_coalesced_requests_get_their_own_rooted_traces(self, references):
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            misses_before = _cache_misses()
            with ThreadPoolExecutor(max_workers=6) as pool:
                outcomes = list(
                    pool.map(lambda _: live.measure(MEASURE_MCF_I7), range(6))
                )
            assert [status for status, _, _ in outcomes] == [200] * 6
            # Coalescing still holds with tracing armed: one real
            # measurement answered every concurrently in-flight request.
            assert _cache_misses() - misses_before == 1
            request_ids = set()
            owners = 0
            for _, headers, _ in outcomes:
                trace = self._trace_of(live, headers)
                request_ids.add(trace["request_id"])
                assert trace["orphans"] == []
                assert trace["root"]["name"] == "http.request"
                if "service.batch" in _span_names(trace):
                    owners += 1
            assert len(request_ids) == 6  # one trace per request
            # At least one request owned a batch; stragglers arriving
            # after it resolved run their own (cache-hit) batches.
            assert owners >= 1

    def test_traceparent_continues_the_callers_trace(self, references):
        trace_id = "ab" * 16
        header = f"00-{trace_id}-{'cd' * 8}-01"
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            status, headers, _ = live.measure(
                MEASURE_MCF_I7, {"traceparent": header}
            )
            assert status == 200
            response_parent = _header(headers, "traceparent")
            assert response_parent.startswith(f"00-{trace_id}-")
            assert response_parent != header  # a fresh span, same trace
            trace = self._trace_of(live, headers)
            assert trace["trace_id"] == trace_id
            assert trace["root"]["attributes"]["remote_parent"] == "cd" * 8

    def test_malformed_traceparent_starts_a_fresh_trace(self, references):
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            status, headers, _ = live.measure(
                MEASURE_MCF_I7, {"traceparent": "not-a-traceparent"}
            )
            assert status == 200  # ignored per spec, never an error
            trace = self._trace_of(live, headers)
            assert trace["trace_id"] != "not-a-traceparent"
            assert trace["root"]["attributes"]["remote_parent"] is None

    def test_trace_listing_and_unknown_id(self, references):
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            _, headers, _ = live.measure(MEASURE_MCF_I7)
            request_id = _header(headers, "X-Request-Id")
            status, _, body = live.request("GET", "/trace")
            assert status == 200
            assert request_id in json.loads(body)["request_ids"]
            assert live.request("GET", "/trace/deadbeef")[0] == 404

    def test_no_trace_mode_serves_untraced_measurements(self, references):
        server = CampaignServer(
            study=_quick_study(references), trace_requests=False
        )
        with _LiveServer(server) as live:
            status, headers, _ = live.measure(MEASURE_MCF_I7)
            assert status == 200
            request_id = _header(headers, "X-Request-Id")
            assert request_id  # correlation id survives without tracing
            assert _header(headers, "traceparent") is None
            assert live.request("GET", f"/trace/{request_id}")[0] == 404


class TestSloEndpoint:
    def test_slo_report_reflects_traffic_and_targets(self, references):
        server = CampaignServer(
            study=_quick_study(references), slo="p99=10s,avail=99"
        )
        with _LiveServer(server) as live:
            for _ in range(3):
                assert live.measure(MEASURE_MCF_I7)[0] == 200
            assert live.measure({"benchmark": "nope"})[0] == 400
            status, _, body = live.request("GET", "/slo")
        assert status == 200
        report = json.loads(body)
        assert report["config"]["latency"] == {"p99": 10.0}
        assert report["config"]["availability"] == pytest.approx(0.99)
        measure_route = report["routes"]["/measure"]
        assert measure_route["count"] >= 4
        assert measure_route["p99_s"] > 0
        assert measure_route["p50_s"] <= measure_route["p99_s"]
        stages = report["stages"]
        assert {"admission", "schedule", "batch"} <= set(stages)
        availability = report["availability"]
        assert availability["requests"] >= 4
        assert availability["target"] == pytest.approx(0.99)
        assert "error_budget" in availability
        assert availability["error_budget"]["consumed"] >= 0.0

    def test_bad_slo_spec_is_rejected_at_construction(self, references):
        with pytest.raises(ValueError, match="p42"):
            CampaignServer(study=_quick_study(references), slo="p42=1ms")


class TestEventLog:
    def test_events_correlate_request_trace_and_store_row(
        self, references, tmp_path
    ):
        log_path = tmp_path / "events.jsonl"
        store_path = tmp_path / "campaign.sqlite"
        server = CampaignServer(
            study=_quick_study(references),
            store=store_path,
            event_log=log_path,
        )
        with _LiveServer(server) as live:
            status, headers, _ = live.measure(MEASURE_MCF_I7)
            assert status == 200
            request_id = _header(headers, "X-Request-Id")
            assert live.measure({"benchmark": "nope"})[0] == 400

        events = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert len(events) == 2
        ok, bad = events
        assert ok["event"] == "measure"
        assert ok["request_id"] == request_id
        assert ok["status"] == 200
        assert ok["benchmark"] == "mcf"
        assert isinstance(ok["store_row"], int)  # joins to the SQLite row
        assert ok["trace_id"]
        with ResultStore(store_path) as store:
            assert store.rowid("mcf", ok["config"]) == ok["store_row"]
        assert bad["status"] == 400
        assert bad["store_row"] is None
        assert bad["benchmark"] is None  # the body never parsed


class TestOpsView:
    def test_top_renders_a_frame_from_a_live_server(self, references, capsys):
        import io

        from repro.obs.top import run_top

        with _LiveServer(
            CampaignServer(
                study=_quick_study(references), slo="p99=10s,avail=99"
            )
        ) as live:
            assert live.measure(MEASURE_MCF_I7)[0] == 200
            stream = io.StringIO()
            code = run_top(
                f"http://127.0.0.1:{live.server.port}",
                interval_s=0.0,
                iterations=1,
                stream=stream,
            )
        assert code == 0
        frame = stream.getvalue()
        assert "repro top" in frame
        assert "cache" in frame
        assert "error budget" in frame


class TestSupervisedService:
    def test_healthz_exposes_the_fleet_worker_table(self, references):
        """A supervised server keeps its fleet alive between batches and
        publishes the per-worker table on /healthz; `repro top` renders
        it from there."""
        server = CampaignServer(
            study=_quick_study(references, reuse_pool=True, supervised=True),
            jobs=2,
        )
        with _LiveServer(server) as live:
            status, _, body = live.measure(MEASURE_MCF_I7)
            assert status == 200
            _, _, health_body = live.request("GET", "/healthz")
            health = json.loads(health_body)
            fleet = health["fleet"]
            assert fleet is not None
            assert fleet["live"] >= 1
            assert fleet["heartbeat_s"] > 0
            assert isinstance(fleet["workers"], list) and fleet["workers"]
            worker = fleet["workers"][0]
            assert {"id", "pid", "state", "beats", "heartbeat_age_s"} <= set(
                worker
            )
            # Supervised measurement serves the same bytes as ever.
            sequential = (
                _quick_study(references)
                .run([stock(CORE_I7_45)], [benchmark("mcf")])
                .single()
            )
            assert body == json.dumps(sequential.as_record()).encode()
            _, _, metrics_body = live.request("GET", "/metrics")
            assert "repro_fleet_workers" in metrics_body.decode()

    def test_unsupervised_server_reports_no_fleet(self, references):
        with _LiveServer(
            CampaignServer(study=_quick_study(references))
        ) as live:
            _, _, body = live.request("GET", "/healthz")
            assert json.loads(body)["fleet"] is None
