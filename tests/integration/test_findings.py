"""Integration: the paper's thirteen findings hold on the reproduction."""

import pytest

from repro.experiments.findings import ALL_FINDINGS, evaluate_all


@pytest.mark.parametrize("finding", ALL_FINDINGS, ids=lambda f: f.__name__)
def test_finding_holds(finding, study):
    report = finding(study)
    assert report.holds, f"{report.finding_id}: {report.evidence}"


def test_all_thirteen_enumerated():
    assert len(ALL_FINDINGS) == 13


def test_evaluate_all_shares_dataset(study):
    reports = evaluate_all(study)
    assert len(reports) == 13
    assert all(r.holds for r in reports)
    assert {r.finding_id for r in reports} == {
        "W1", "W2", "W3", "W4",
        "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9",
    }
