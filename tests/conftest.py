"""Shared fixtures for the test suite.

The expensive objects — the calibrated engine and a quick-protocol study
with its result cache — are session-scoped: the study caches every
(benchmark, configuration) measurement, so integration tests share one
dataset exactly as the paper's analyses share one physical dataset.
"""

from __future__ import annotations

import pytest

from repro.core.normalization import References
from repro.core.study import Study
from repro.execution.engine import ExecutionEngine, default_engine


@pytest.fixture(scope="session")
def engine() -> ExecutionEngine:
    return default_engine()


@pytest.fixture(scope="session")
def references(engine: ExecutionEngine) -> References:
    return References(engine)


@pytest.fixture(scope="session")
def study(references: References) -> Study:
    """Quick-protocol study (20% of the paper's repetition counts)."""
    return Study(references=references, invocation_scale=0.2)


@pytest.fixture(scope="session")
def full_study(references: References) -> Study:
    """Full paper-protocol study for tests that need real CIs."""
    return Study(references=references, invocation_scale=1.0)
