"""Shared fixtures for the test suite.

The expensive objects — the calibrated engine and a quick-protocol study
with its result cache — are session-scoped: the study caches every
(benchmark, configuration) measurement, so integration tests share one
dataset exactly as the paper's analyses share one physical dataset.

Two environment variables turn the suite into a fault-injection matrix
(see docs/robustness.md and the CI workflow):

* ``REPRO_FAULT_PLAN`` — ``demo``, ``ci``, or a JSON plan path; arms the
  fault injector for the whole session.  Because retried fail-stop
  faults reproduce the byte-identical fault-free measurement, the
  golden-value tests must still pass under a fail-stop plan.
* ``REPRO_TEST_TIMEOUT`` — per-test wall-clock budget in seconds,
  enforced with ``SIGALRM`` (a stand-in for pytest-timeout, which is not
  vendored).  Catches injected hangs that retry logic fails to bound.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.normalization import References
from repro.core.study import Study
from repro.execution.engine import ExecutionEngine, default_engine
from repro.faults.injector import install as install_faults
from repro.faults.injector import uninstall as uninstall_faults
from repro.faults.plan import plan_from_arg
from repro.faults.retry import RetryPolicy


@pytest.fixture(scope="session", autouse=True)
def _env_fault_plan():
    """Arm the injector session-wide when REPRO_FAULT_PLAN is set."""
    plan_arg = os.environ.get("REPRO_FAULT_PLAN")
    if not plan_arg:
        yield
        return
    install_faults(plan_from_arg(plan_arg))
    try:
        yield
    finally:
        uninstall_faults()


def _fault_matrix_retry() -> RetryPolicy | None:
    """Under an env-armed fault plan, give the shared studies more retry
    headroom so low-probability pile-ups don't quarantine golden pairs."""
    if not os.environ.get("REPRO_FAULT_PLAN"):
        return None
    return RetryPolicy(max_retries=8)


@pytest.fixture(scope="session")
def engine() -> ExecutionEngine:
    return default_engine()


@pytest.fixture(scope="session")
def references(engine: ExecutionEngine) -> References:
    return References(engine)


@pytest.fixture(scope="session")
def study(references: References) -> Study:
    """Quick-protocol study (20% of the paper's repetition counts)."""
    return Study(
        references=references,
        invocation_scale=0.2,
        retry=_fault_matrix_retry(),
    )


@pytest.fixture(scope="session")
def full_study(references: References) -> Study:
    """Full paper-protocol study for tests that need real CIs."""
    return Study(
        references=references,
        invocation_scale=1.0,
        retry=_fault_matrix_retry(),
    )


@pytest.fixture
def clean_singletons():
    """Reset the process-wide meter cache and shared study around a test
    that mutates them (e.g. by measuring under an ad-hoc fault plan)."""
    from repro.core.study import reset_shared_study
    from repro.measurement.meter import reset_meters

    reset_meters()
    reset_shared_study()
    try:
        yield
    finally:
        reset_meters()
        reset_shared_study()


# -- per-test wall-clock timeout (SIGALRM) ----------------------------------

_TIMEOUT_S = int(os.environ.get("REPRO_TEST_TIMEOUT", "0") or "0")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if _TIMEOUT_S <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _timed_out(signum, frame):
        pytest.fail(
            f"test exceeded REPRO_TEST_TIMEOUT={_TIMEOUT_S}s "
            "(likely an unbounded hang under fault injection)",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.alarm(_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
