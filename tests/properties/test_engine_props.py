"""Property-based tests for execution-engine invariants.

These run the real engine over randomly drawn catalog benchmarks and
configurations from the study's space, asserting physical sanity no matter
the combination.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.execution.engine import default_engine
from repro.hardware.configurations import all_configurations
from repro.workloads.catalog import BENCHMARKS

configurations = st.sampled_from(all_configurations())
benchmarks = st.sampled_from(BENCHMARKS)


class TestEngineInvariants:
    @settings(max_examples=60, deadline=None)
    @given(benchmarks, configurations)
    def test_time_and_power_physical(self, benchmark, config):
        ex = default_engine().ideal(benchmark, config)
        assert ex.seconds.value > 0
        assert 0.5 < ex.average_power.value < 150.0
        # Measured power never exceeds the part's TDP (Fig. 2's envelope).
        assert ex.average_power.value < config.spec.tdp_w

    @settings(max_examples=60, deadline=None)
    @given(benchmarks, configurations)
    def test_phases_consistent(self, benchmark, config):
        ex = default_engine().ideal(benchmark, config)
        assert sum(p.seconds for p in ex.phases) == pytest.approx(
            ex.seconds.value, rel=1e-9
        )
        for phase in ex.phases:
            assert 0 < phase.busy_cores <= config.active_cores + 1e-9
            assert 0.0 <= phase.utilisation <= 1.0
            assert phase.power.value > 0

    @settings(max_examples=40, deadline=None)
    @given(benchmarks, configurations)
    def test_events_consistent(self, benchmark, config):
        ex = default_engine().ideal(benchmark, config)
        events = ex.events
        assert events.instructions > 0
        assert events.cycles > 0
        assert 0.0 < events.ipc < config.spec.family.issue_width

    @settings(max_examples=40, deadline=None)
    @given(benchmarks)
    def test_disabling_features_never_speeds_things_up(self, benchmark):
        """Fewer cores or SMT off never improves run time on the i7."""
        from repro.hardware.catalog import CORE_I7_45
        from repro.hardware.config import Configuration

        engine = default_engine()
        full = engine.ideal(benchmark, Configuration(CORE_I7_45, 4, 2, 2.66))
        half = engine.ideal(benchmark, Configuration(CORE_I7_45, 2, 1, 2.66))
        assert half.seconds.value >= full.seconds.value * 0.999

    @settings(max_examples=40, deadline=None)
    @given(benchmarks)
    def test_downclock_never_speeds_things_up(self, benchmark):
        from repro.hardware.catalog import CORE_I5_32
        from repro.hardware.config import Configuration

        engine = default_engine()
        fast = engine.ideal(benchmark, Configuration(CORE_I5_32, 2, 2, 3.46))
        slow = engine.ideal(benchmark, Configuration(CORE_I5_32, 2, 2, 1.2))
        assert slow.seconds.value > fast.seconds.value
