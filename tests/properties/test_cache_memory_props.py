"""Property-based tests for the cache and memory-path models."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.hardware.caches import capacity_miss_factor, sharing_pressure
from repro.hardware.catalog import PROCESSORS
from repro.hardware.memory import bandwidth_pressure

footprints = st.floats(min_value=0.0, max_value=512.0, allow_nan=False)
cache_sizes = st.floats(min_value=0.25, max_value=16.0, allow_nan=False)


class TestCacheProperties:
    @given(footprints, cache_sizes)
    def test_factor_positive(self, footprint, llc):
        assert capacity_miss_factor(footprint, llc) > 0.0

    @given(footprints, cache_sizes, cache_sizes)
    def test_bigger_cache_never_more_misses(self, footprint, a, b):
        small, big = sorted((a, b))
        assert capacity_miss_factor(footprint, big) <= capacity_miss_factor(
            footprint, small
        ) + 1e-12

    @given(footprints)
    def test_reference_cache_fixed_point(self, footprint):
        assert capacity_miss_factor(footprint, 4.0) == pytest.approx(1.0)

    @given(st.integers(min_value=1, max_value=64))
    def test_sharing_pressure_at_least_one(self, contexts):
        assert sharing_pressure(contexts) >= 1.0

    @given(st.integers(min_value=1, max_value=32), st.integers(min_value=1, max_value=32))
    def test_sharing_pressure_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert sharing_pressure(lo) <= sharing_pressure(hi)


class TestBandwidthProperties:
    rates = st.floats(min_value=0.0, max_value=1e10, allow_nan=False)
    memories = st.sampled_from([spec.memory for spec in PROCESSORS])

    @given(memories, rates)
    def test_inflation_at_least_one(self, memory, rate):
        assert bandwidth_pressure(memory, rate).latency_inflation >= 1.0

    @given(memories, rates, rates)
    def test_inflation_monotone_in_demand(self, memory, a, b):
        lo, hi = sorted((a, b))
        assert (
            bandwidth_pressure(memory, lo).latency_inflation
            <= bandwidth_pressure(memory, hi).latency_inflation + 1e-12
        )

    @given(memories, rates)
    def test_utilisation_bounded(self, memory, rate):
        outcome = bandwidth_pressure(memory, rate)
        assert 0.0 <= outcome.utilisation <= 0.95

    @given(memories, rates)
    def test_inflation_bounded(self, memory, rate):
        """The 0.95 utilisation clamp keeps inflation finite."""
        assert bandwidth_pressure(memory, rate).latency_inflation < 10.0
