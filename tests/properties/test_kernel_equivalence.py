"""Kernel-equivalence property suite (docs/performance.md, "Vectorized
path").

The compiled-kernel contract is the same strongest-form one the parallel
executor carries: vectorisation may change *how* a pair is measured,
never *what* — a vectorized sweep must be **byte-identical** to the
scalar path in records, :class:`CampaignHealth`, and checkpoint bytes, at
any worker count, over catalog and generated workloads alike, and must
degrade to the scalar path (still byte-identically) when a fault plan
arms any of a pair's sites.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.study import Study
from repro.execution.kernels import kernel_stats
from repro.faults.injector import injected
from repro.faults.plan import FaultPlan, fail_stop_plan
from repro.hardware.catalog import CORE_I5_32, CORE_I7_45, reference_processors
from repro.hardware.config import Configuration, stock
from repro.workloads.catalog import BENCHMARKS
from repro.workloads.synthetic import synthetic

CLEAN = FaultPlan()

#: jobs=None is the in-process path; 1 exercises the full dispatch/merge
#: protocol through a single worker; 4 adds real interleaving.
WORKER_COUNTS = (None, 1, 4)


def _sample_pairs():
    """A seeded sample of (benchmark, configuration) pairs: catalog
    benchmarks plus generated workloads, on stock and non-stock
    configurations.  Seeded, so every process in a parallel comparison
    measures the same cells."""
    rng = random.Random("kernel-equivalence")
    configs = [stock(spec) for spec in reference_processors()]
    configs += [
        Configuration(CORE_I7_45, 1, 1, 2.66),
        Configuration(CORE_I7_45, 4, 2, 2.66),
        Configuration(CORE_I5_32, 2, 2, 1.2),
    ]
    benches = rng.sample(list(BENCHMARKS), 6) + [
        synthetic(
            f"kern-syn-{i}",
            boundness=rng.random(),
            branchiness=rng.random(),
            parallelism=rng.random() * 0.98,
            managed=bool(i % 2),
            reference_seconds=0.5 + rng.random() * 30.0,
        )
        for i in range(3)
    ]
    return [(bench, rng.choice(configs)) for bench in benches] + [
        (benches[0], configs[0]),  # a stock catalog cell is always present
    ]


PAIRS = _sample_pairs()


def _sweep(references, checkpoint, vectorize, jobs=None):
    study = Study(
        references=references,
        invocation_scale=0.2,
        checkpoint_path=checkpoint,
        vectorize=vectorize,
    )
    return study.run_pairs(PAIRS, jobs=jobs)


class TestKernelEquivalence:
    def test_vectorized_sweep_is_byte_identical(self, references, tmp_path):
        scalar_checkpoint = tmp_path / "scalar.jsonl"
        with injected(CLEAN):
            scalar = _sweep(references, scalar_checkpoint, vectorize=False)
        compiled_before = kernel_stats()["compiles"]
        for jobs in WORKER_COUNTS:
            checkpoint = tmp_path / f"vector-{jobs}.jsonl"
            with injected(CLEAN):
                vectorized = _sweep(
                    references, checkpoint, vectorize=True, jobs=jobs
                )
            assert [r.as_record() for r in vectorized] == [
                r.as_record() for r in scalar
            ]
            assert vectorized.health == scalar.health
            assert checkpoint.read_bytes() == scalar_checkpoint.read_bytes()
        # The equivalence must not have been vacuous: the in-process
        # vectorized sweep really compiled kernels.
        assert kernel_stats()["compiles"] > compiled_before

    def test_fault_armed_pairs_fall_back_byte_identically(
        self, references, tmp_path
    ):
        """A wildcard fail-stop plan arms every site, so every pair must
        take the scalar fallback — and reproduce the scalar campaign's
        records, health (including fired faults), and checkpoint bytes."""
        plan = fail_stop_plan(probability=0.02, seed="kernel-fallback")
        scalar_checkpoint = tmp_path / "scalar.jsonl"
        vector_checkpoint = tmp_path / "vector.jsonl"
        with injected(plan):
            scalar = _sweep(references, scalar_checkpoint, vectorize=False)
        fallbacks_before = kernel_stats()["fallbacks"].get("faults", 0)
        with injected(plan):
            vectorized = _sweep(references, vector_checkpoint, vectorize=True)
        assert [r.as_record() for r in vectorized] == [
            r.as_record() for r in scalar
        ]
        assert vectorized.health == scalar.health
        assert list(vectorized.health.failures) == list(scalar.health.failures)
        assert vector_checkpoint.read_bytes() == scalar_checkpoint.read_bytes()
        assert kernel_stats()["fallbacks"]["faults"] > fallbacks_before


class TestGeneratedPairEquivalence:
    """Hypothesis drives the signature space: any synthetic workload's
    vectorized measurement equals its scalar one, field for field."""

    @settings(max_examples=10, deadline=None)
    @given(
        boundness=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        parallelism=st.floats(min_value=0.0, max_value=0.98, allow_nan=False),
        managed=st.booleans(),
        seconds=st.floats(min_value=0.5, max_value=60.0, allow_nan=False),
        salt=st.integers(min_value=0, max_value=10**6),
    )
    def test_single_pair_measurement_matches(
        self, references, boundness, parallelism, managed, seconds, salt
    ):
        bench = synthetic(
            f"kern-prop-{salt}",
            boundness=boundness,
            parallelism=parallelism,
            managed=managed,
            reference_seconds=seconds,
        )
        config = stock(CORE_I7_45)
        with injected(CLEAN):
            scalar = Study(
                references=references, invocation_scale=0.2, vectorize=False
            ).measure(bench, config)
            vectorized = Study(
                references=references, invocation_scale=0.2, vectorize=True
            ).measure(bench, config)
        assert vectorized == scalar
