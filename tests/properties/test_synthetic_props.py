"""Property-based tests driving the engine with *generated* workloads.

The catalog's 61 signatures are hand-set; these tests use the synthetic
builder as a hypothesis strategy so the engine's physical invariants are
checked over the whole signature space, not just the catalog's corner of
it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.execution.engine import default_engine
from repro.hardware.catalog import CORE_I5_32, CORE_I7_45
from repro.hardware.config import Configuration, stock
from repro.workloads.synthetic import synthetic

fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
parallel = st.floats(min_value=0.0, max_value=0.98, allow_nan=False)


@st.composite
def workloads(draw):
    return synthetic(
        name=f"gen-{draw(st.integers(min_value=0, max_value=10**6))}",
        boundness=draw(fractions),
        branchiness=draw(fractions),
        parallelism=draw(parallel),
        managed=draw(st.booleans()),
        reference_seconds=draw(
            st.floats(min_value=0.5, max_value=100.0, allow_nan=False)
        ),
    )


class TestGeneratedWorkloads:
    @settings(max_examples=40, deadline=None)
    @given(workloads())
    def test_physical_sanity_on_stock_i7(self, bench):
        execution = default_engine().ideal(bench, stock(CORE_I7_45))
        assert execution.seconds.value > 0
        assert 10.0 < execution.average_power.value < CORE_I7_45.tdp_w
        assert 0.0 < execution.events.ipc < 4.0

    @settings(max_examples=30, deadline=None)
    @given(workloads())
    def test_reference_calibration_closes(self, bench):
        from repro.core.statistics import mean
        from repro.hardware.catalog import reference_processors

        engine = default_engine()
        times = [
            engine.ideal(bench, stock(spec)).seconds.value
            for spec in reference_processors()
        ]
        assert mean(times) == pytest.approx(bench.reference_seconds, rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(workloads())
    def test_more_contexts_never_slower(self, bench):
        engine = default_engine()
        one = engine.ideal(bench, Configuration(CORE_I7_45, 1, 1, 2.66))
        eight = engine.ideal(bench, Configuration(CORE_I7_45, 4, 2, 2.66))
        assert eight.seconds.value <= one.seconds.value * 1.001

    @settings(max_examples=30, deadline=None)
    @given(workloads())
    def test_downclock_slower_but_cheaper_power(self, bench):
        engine = default_engine()
        fast = engine.ideal(bench, Configuration(CORE_I5_32, 2, 2, 3.46))
        slow = engine.ideal(bench, Configuration(CORE_I5_32, 2, 2, 1.2))
        assert slow.seconds.value > fast.seconds.value
        assert slow.average_power.value < fast.average_power.value

    @settings(max_examples=25, deadline=None)
    @given(fractions, fractions)
    def test_boundness_monotone_in_power(self, low, high):
        """More memory-bound means less switching: power never rises with
        boundness, all else equal."""
        lo, hi = sorted((low, high))
        engine = default_engine()
        cool = engine.ideal(
            synthetic("p-hi", boundness=hi), stock(CORE_I7_45)
        ).average_power.value
        hot = engine.ideal(
            synthetic("p-lo", boundness=lo), stock(CORE_I7_45)
        ).average_power.value
        assert cool <= hot + 1e-6
