"""Property-based tests for quantities: dimensional algebra laws."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.core.quantities import Joules, Seconds, Watts, average_power, energy

finite = st.floats(
    min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestAlgebraLaws:
    @given(finite, finite)
    def test_addition_commutes(self, a, b):
        assert (Watts(a) + Watts(b)).value == pytest.approx(
            (Watts(b) + Watts(a)).value
        )

    @given(finite, finite, finite)
    def test_addition_associates(self, a, b, c):
        left = (Watts(a) + Watts(b)) + Watts(c)
        right = Watts(a) + (Watts(b) + Watts(c))
        assert left.value == pytest.approx(right.value)

    @given(finite, finite)
    def test_scaling_distributes(self, a, k):
        assert (Watts(a) * k).value == pytest.approx(a * k)

    @given(finite)
    def test_self_ratio_is_one(self, a):
        assert Seconds(a) / Seconds(a) == pytest.approx(1.0)


class TestEnergyLaws:
    @given(finite, finite)
    def test_energy_power_round_trip(self, watts, seconds):
        joules = energy(Watts(watts), Seconds(seconds))
        assert average_power(joules, Seconds(seconds)).value == pytest.approx(
            watts, rel=1e-9
        )

    @given(finite, finite, finite)
    def test_energy_additive_over_time(self, watts, t1, t2):
        split = energy(Watts(watts), Seconds(t1)) + energy(Watts(watts), Seconds(t2))
        whole = energy(Watts(watts), Seconds(t1 + t2))
        assert split.value == pytest.approx(whole.value, rel=1e-9)

    @given(finite, finite)
    def test_energy_monotone_in_power(self, watts, seconds):
        assert energy(Watts(watts * 2), Seconds(seconds)).value > energy(
            Watts(watts), Seconds(seconds)
        ).value
