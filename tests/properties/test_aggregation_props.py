"""Property-based tests for the aggregation methodology (§2.6)."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.core.aggregation import (
    benchmark_average,
    group_means,
    ratio_of_aggregates,
    weighted_average,
)
from repro.workloads.catalog import BENCHMARKS

positive = st.floats(min_value=0.01, max_value=1000.0, allow_nan=False)


@st.composite
def benchmark_values(draw):
    return {b.name: draw(positive) for b in BENCHMARKS}


class TestAggregationProperties:
    @given(benchmark_values())
    def test_avg_w_within_group_mean_range(self, values):
        means = group_means(values, BENCHMARKS)
        avg_w = weighted_average(means)
        assert min(means.values()) - 1e-9 <= avg_w <= max(means.values()) + 1e-9

    @given(benchmark_values())
    def test_avg_b_within_value_range(self, values):
        avg_b = benchmark_average(values)
        assert min(values.values()) - 1e-9 <= avg_b <= max(values.values()) + 1e-9

    @given(benchmark_values(), st.floats(min_value=0.1, max_value=10,
                                         allow_nan=False))
    def test_scale_equivariance(self, values, k):
        scaled = {name: v * k for name, v in values.items()}
        base = weighted_average(group_means(values, BENCHMARKS))
        assert weighted_average(group_means(scaled, BENCHMARKS)) == pytest.approx(
            base * k, rel=1e-9
        )

    @given(benchmark_values())
    def test_self_ratio_is_one(self, values):
        assert ratio_of_aggregates(values, values, BENCHMARKS) == pytest.approx(1.0)

    @given(benchmark_values(), st.floats(min_value=0.1, max_value=10,
                                         allow_nan=False))
    def test_uniform_ratio_recovered(self, values, k):
        scaled = {name: v * k for name, v in values.items()}
        assert ratio_of_aggregates(scaled, values, BENCHMARKS) == pytest.approx(
            k, rel=1e-9
        )

    @given(benchmark_values())
    def test_constant_values_fixed_point(self, values):
        constant = {name: 7.0 for name in values}
        assert weighted_average(group_means(constant, BENCHMARKS)) == pytest.approx(7.0)
        assert benchmark_average(constant) == pytest.approx(7.0)
