"""Property-based tests for the statistics primitives."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.core.statistics import (
    confidence_interval,
    linear_fit,
    mean,
    sample_std,
)

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
    min_size=2,
    max_size=50,
)


class TestMeanProperties:
    @given(samples)
    def test_mean_within_range(self, xs):
        assert min(xs) - 1e-6 <= mean(xs) <= max(xs) + 1e-6

    @given(samples, st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_mean_shift_equivariant(self, xs, shift):
        assert mean([x + shift for x in xs]) == pytest.approx(
            mean(xs) + shift, abs=1e-3
        )

    @given(samples)
    def test_std_nonnegative(self, xs):
        assert sample_std(xs) >= 0.0

    @given(samples)
    def test_std_shift_invariant(self, xs):
        assert sample_std([x + 10.0 for x in xs]) == pytest.approx(
            sample_std(xs), abs=1e-3
        )


class TestConfidenceIntervalProperties:
    @given(samples)
    def test_interval_contains_mean(self, xs):
        ci = confidence_interval(xs)
        assert ci.lower <= ci.mean <= ci.upper

    @given(samples)
    def test_width_nonnegative(self, xs):
        assert confidence_interval(xs).half_width >= 0.0

    @given(samples)
    def test_replication_narrows_interval(self, xs):
        one = confidence_interval(xs)
        many = confidence_interval(xs * 4)
        assert many.half_width <= one.half_width + 1e-12


class TestLinearFitProperties:
    lines = st.tuples(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=0.01, max_value=100, allow_nan=False),
    )

    @given(lines, st.lists(st.integers(min_value=-50, max_value=50),
                           min_size=3, max_size=20, unique=True))
    def test_exact_recovery_of_noiseless_line(self, line, xs):
        xs = [float(x) for x in xs]
        intercept, slope = line
        ys = [slope * x + intercept for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.slope == pytest.approx(slope, rel=1e-4, abs=1e-5)
        assert fit.intercept == pytest.approx(intercept, rel=1e-3, abs=1e-4)
        assert fit.r_squared >= 0.999

    @given(lines, st.floats(min_value=-40, max_value=40, allow_nan=False))
    def test_invert_is_right_inverse(self, line, x):
        intercept, slope = line
        xs = [0.0, 10.0, 20.0, 30.0]
        fit = linear_fit(xs, [slope * v + intercept for v in xs])
        assert fit.invert(fit.predict(x)) == pytest.approx(x, abs=1e-5)
