"""Property-based tests for Pareto-frontier invariants."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.pareto import TradeoffPoint, pareto_efficient

points = st.lists(
    st.builds(
        TradeoffPoint,
        key=st.text(min_size=1, max_size=4),
        performance=st.floats(min_value=0.01, max_value=100, allow_nan=False),
        energy=st.floats(min_value=0.01, max_value=100, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)


class TestFrontierInvariants:
    @given(points)
    def test_frontier_nonempty(self, ps):
        assert len(pareto_efficient(ps)) >= 1

    @given(points)
    def test_frontier_subset_of_input(self, ps):
        frontier = pareto_efficient(ps)
        for point in frontier:
            assert point in ps

    @given(points)
    def test_no_frontier_point_dominated_by_any_input(self, ps):
        for point in pareto_efficient(ps):
            assert not any(q.dominates(point) for q in ps)

    @given(points)
    def test_every_excluded_point_is_dominated(self, ps):
        frontier = set(map(id, pareto_efficient(ps)))
        for point in ps:
            if id(point) not in frontier:
                assert any(q.dominates(point) for q in ps)

    @given(points)
    def test_frontier_is_staircase(self, ps):
        """Sorted by performance, frontier energies never decrease... more
        precisely: for any two frontier points, the faster one must not
        also be strictly cheaper (else it would dominate)."""
        frontier = pareto_efficient(ps)
        for i in range(len(frontier) - 1):
            slower, faster = frontier[i], frontier[i + 1]
            if faster.performance > slower.performance:
                assert faster.energy >= slower.energy

    @given(points)
    def test_idempotent(self, ps):
        once = pareto_efficient(ps)
        twice = pareto_efficient(once)
        assert list(twice) == list(once)

    @given(points)
    def test_best_performance_always_on_frontier(self, ps):
        best = max(ps, key=lambda p: (p.performance, -p.energy))
        frontier = pareto_efficient(ps)
        assert any(
            p.performance == best.performance and p.energy == best.energy
            for p in frontier
        )

    @given(points)
    def test_lowest_energy_always_on_frontier(self, ps):
        best = min(ps, key=lambda p: (p.energy, -p.performance))
        frontier = pareto_efficient(ps)
        assert any(
            p.performance == best.performance and p.energy == best.energy
            for p in frontier
        )

    @given(points, st.integers(min_value=0, max_value=2**32 - 1))
    def test_frontier_unique_under_permutation(self, ps, seed):
        """The frontier — membership AND order — is a pure function of the
        point *set*, not the input order.  This is what lets the projection
        subsystem promise byte-identical datasets across shard orders."""
        shuffled = list(ps)
        random.Random(seed).shuffle(shuffled)
        assert list(pareto_efficient(shuffled)) == list(pareto_efficient(ps))


class TestDominanceRelation:
    @given(points)
    def test_dominance_irreflexive(self, ps):
        for point in ps:
            assert not point.dominates(point)

    @given(points)
    def test_dominance_antisymmetric(self, ps):
        for a in ps:
            for b in ps:
                if a.dominates(b):
                    assert not b.dominates(a)

    @given(points)
    def test_dominance_transitive(self, ps):
        for a in ps:
            for b in ps:
                if not a.dominates(b):
                    continue
                for c in ps:
                    if b.dominates(c):
                        assert a.dominates(c)
