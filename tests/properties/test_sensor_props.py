"""Property-based tests for the measurement pipeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.quantities import Amperes, Seconds
from repro.execution.trace import PowerTrace
from repro.measurement.calibration import calibrate
from repro.measurement.logger import DataLogger
from repro.measurement.sensor import HallEffectSensor
from repro.measurement.supply import ProcessorSupply

keys = st.text(
    alphabet="abcdefghij", min_size=1, max_size=6
)


class TestSensorProperties:
    @given(keys, st.floats(min_value=-5.0, max_value=5.0, allow_nan=False))
    def test_output_within_adc_range(self, key, amps):
        sensor = HallEffectSensor(key)
        out = sensor.output_volts(Amperes(amps))
        assert 0.0 <= out.value <= 5.0

    @given(keys, st.floats(min_value=0.1, max_value=4.5, allow_nan=False),
           st.floats(min_value=0.1, max_value=4.5, allow_nan=False))
    def test_noiseless_output_monotone(self, key, a, b):
        sensor = HallEffectSensor(key, noise_fraction=0.0)
        lo, hi = sorted((a, b))
        assert sensor.output_volts(Amperes(lo)).value <= sensor.output_volts(
            Amperes(hi)
        ).value

    @settings(max_examples=20, deadline=None)
    @given(keys)
    def test_every_device_calibrates_to_paper_quality(self, key):
        """Any manufactured device (random gain/offset within spec) must
        pass the paper's 0.999 calibration bar."""
        calibration = calibrate(HallEffectSensor(key))
        assert calibration.r_squared >= 0.999


class TestEndToEndMeasurementProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        keys,
        st.floats(min_value=6.0, max_value=55.0, allow_nan=False),
        st.floats(min_value=5.0, max_value=100.0, allow_nan=False),
    )
    def test_constant_power_recovered_within_four_percent(
        self, key, watts, seconds
    ):
        # One ADC code is worth ~0.3 W: at the low end of the sweep the
        # deterministic quantisation bias alone approaches 3%, so the
        # recovered value is asserted within 4%.
        """Whatever constant power the chip draws within the 5 A sensor's
        span, the calibrated pipeline recovers it closely."""
        sensor = HallEffectSensor(key)
        supply = ProcessorSupply(key)
        logger = DataLogger(sensor=sensor, supply=supply)
        calibration = calibrate(sensor)
        trace = PowerTrace(Seconds(seconds), (seconds,), (watts,))
        logged = logger.log(trace, run_salt="prop")
        amps = (logged.codes.astype(float) - calibration.fit.intercept) / calibration.fit.slope
        measured = float(np.mean(amps) * 12.0)
        assert measured == pytest.approx(watts, rel=0.04)

    @settings(max_examples=15, deadline=None)
    @given(
        st.floats(min_value=5.0, max_value=30.0, allow_nan=False),
        st.floats(min_value=30.0, max_value=55.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
    )
    def test_two_phase_average_respects_weights(self, low, high, split):
        """Measured average of a two-level trace lands between the levels,
        near the time-weighted truth."""
        sensor = HallEffectSensor("two-phase")
        supply = ProcessorSupply("two-phase")
        logger = DataLogger(sensor=sensor, supply=supply)
        calibration = calibrate(sensor)
        duration = 50.0
        trace = PowerTrace(
            Seconds(duration),
            (split * duration, duration),
            (low, high),
        )
        logged = logger.log(trace, run_salt="prop2")
        amps = (logged.codes.astype(float) - calibration.fit.intercept) / calibration.fit.slope
        measured = float(np.mean(amps) * 12.0)
        truth = trace.average_power().value
        assert measured == pytest.approx(truth, rel=0.05)
