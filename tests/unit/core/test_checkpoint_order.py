"""Unit test for checkpoint determinism.

``Study.save_checkpoint`` emits records in sorted (benchmark,
configuration) order, so the file's bytes depend only on the dataset —
not on whether the cache was filled sequentially, in parallel merge
order, or by a resumed campaign.
"""

import json

from repro.core.study import Study
from repro.faults.injector import injected
from repro.faults.plan import FaultPlan
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.workloads.catalog import benchmark

CLEAN = FaultPlan()

PAIRS = [
    (benchmark(name), stock(spec))
    for spec in (CORE_I7_45, ATOM_45)
    for name in ("mcf", "db")
]


class TestSaveCheckpointOrder:
    def test_bytes_are_independent_of_population_order(
        self, references, tmp_path
    ):
        forward = Study(references=references, invocation_scale=0.2)
        backward = Study(references=references, invocation_scale=0.2)
        with injected(CLEAN):
            for bench, config in PAIRS:
                forward.measure(bench, config)
            for bench, config in reversed(PAIRS):
                backward.measure(bench, config)
        a = forward.save_checkpoint(tmp_path / "forward.jsonl")
        b = backward.save_checkpoint(tmp_path / "backward.jsonl")
        assert a.read_bytes() == b.read_bytes()

    def test_records_are_sorted_by_benchmark_then_config(
        self, references, tmp_path
    ):
        study = Study(references=references, invocation_scale=0.2)
        with injected(CLEAN):
            for bench, config in PAIRS:
                study.measure(bench, config)
        path = study.save_checkpoint(tmp_path / "sorted.jsonl")
        keys = [
            (record["benchmark"], record["configuration"])
            for record in map(json.loads, path.read_text().splitlines())
        ]
        assert keys == sorted(keys)

    def test_roundtrip_restores_every_record(self, references, tmp_path):
        writer = Study(references=references, invocation_scale=0.2)
        with injected(CLEAN):
            for bench, config in PAIRS:
                writer.measure(bench, config)
        path = writer.save_checkpoint(tmp_path / "roundtrip.jsonl")
        reader = Study(references=references, invocation_scale=0.2)
        assert reader.restore_checkpoint(path) == len(PAIRS)
        for bench, config in PAIRS:
            assert reader.is_cached(bench, config)
