"""Unit tests for the analysis drill-downs and bar rendering."""

import pytest

from repro.analysis.cpi_stacks import across_machines, render, stack_for
from repro.analysis.power_attribution import attribute
from repro.analysis.power_attribution import render as render_power
from repro.analysis.tdp_regression import regress
from repro.hardware.catalog import ATOM_45, CORE_I7_45, PENTIUM4_130, PROCESSORS
from repro.hardware.config import Configuration, stock
from repro.reporting.bars import StackSegment, bar_chart, stacked_bars
from repro.workloads.catalog import benchmark


class TestBarChart:
    def test_renders_labels_and_bars(self):
        text = bar_chart({"a": 2.0, "b": 1.0})
        assert "a" in text and "#" in text

    def test_baseline_flips_direction(self):
        text = bar_chart({"saves": 0.8, "costs": 1.3}, baseline=1.0)
        saves_line = next(l for l in text.splitlines() if l.startswith("saves"))
        costs_line = next(l for l in text.splitlines() if l.startswith("costs"))
        assert "-" in saves_line
        assert "#" in costs_line

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_constant_values_no_crash(self):
        assert "a" in bar_chart({"a": 1.0, "b": 1.0}, baseline=1.0)


class TestStackedBars:
    def test_legend_and_scale(self):
        rows = {
            "x": (StackSegment("p", 1.0, "p"), StackSegment("q", 1.0, "q")),
            "y": (StackSegment("p", 4.0, "p"),),
        }
        text = stacked_bars(rows, width=40)
        assert "p=p" in text and "q=q" in text
        x_line = next(l for l in text.splitlines() if l.startswith("x"))
        y_line = next(l for l in text.splitlines() if l.startswith("y"))
        assert y_line.count("p") > x_line.count("p")

    def test_negative_segment_rejected(self):
        with pytest.raises(ValueError):
            StackSegment("p", -1.0, "p")


class TestCpiStacks:
    def test_segments_sum_to_total(self):
        stack = stack_for(benchmark("mcf"), stock(CORE_I7_45))
        assert sum(s.value for s in stack.segments) == pytest.approx(
            stack.breakdown.total
        )

    def test_mcf_memory_dominated_everywhere(self):
        for stack in across_machines(benchmark("mcf"), PROCESSORS):
            parts = {s.label: s.value for s in stack.segments}
            assert parts["memory"] == max(parts.values()), stack.processor

    def test_hmmer_issue_dominated_on_ooo(self):
        stack = stack_for(benchmark("hmmer"), stock(CORE_I7_45))
        parts = {s.label: s.value for s in stack.segments}
        assert parts["issue"] == max(parts.values())

    def test_p4_branch_share_largest(self):
        """The deep NetBurst pipeline pays the most per misprediction."""
        p4 = stack_for(benchmark("sjeng"), stock(PENTIUM4_130))
        i7 = stack_for(benchmark("sjeng"), stock(CORE_I7_45))
        assert p4.breakdown.branch > i7.breakdown.branch

    def test_render(self):
        text = render(across_machines(benchmark("mcf"), (CORE_I7_45, ATOM_45)))
        assert "m=memory" in text
        assert "i7 (45) / mcf" in text


class TestPowerAttribution:
    def test_parts_sum_to_average_power(self, engine):
        execution = engine.ideal(benchmark("xalan"), stock(CORE_I7_45))
        attribution = attribute(execution)
        assert attribution.total == pytest.approx(
            execution.average_power.value, rel=1e-6
        )

    def test_active_share_rises_with_parallelism(self, engine):
        one = attribute(
            engine.ideal(benchmark("xalan"), Configuration(CORE_I7_45, 1, 1, 2.66))
        )
        eight = attribute(
            engine.ideal(benchmark("xalan"), Configuration(CORE_I7_45, 4, 2, 2.66))
        )
        assert eight.share("core_active") > one.share("core_active")

    def test_atom_uncore_heavy(self, engine):
        """Small cores behind an in-package GPU/chipset: the uncore is the
        biggest consumer on the Atoms."""
        from repro.hardware.catalog import ATOM_D510_45

        execution = engine.ideal(benchmark("mcf"), stock(ATOM_D510_45))
        attribution = attribute(execution)
        assert attribution.share("uncore") > 0.4

    def test_render(self, engine):
        execution = engine.ideal(benchmark("xalan"), stock(CORE_I7_45))
        text = render_power({"i7": attribute(execution)})
        assert "u=uncore" in text


class TestTdpRegression:
    def test_loose_positive_correlation(self, study):
        regression = regress(study)
        assert regression.fit.slope > 0
        assert 0.5 < regression.r_squared < 0.999

    def test_tdp_always_overestimates(self, study):
        regression = regress(study)
        for label, tdp, watts, ratio in regression.machines:
            assert ratio > 1.0, label

    def test_ratio_spread_shows_tdp_misranks(self, study):
        """§2.5: TDP is unusable for comparing among processors — the
        TDP-to-measured ratio varies widely across machines."""
        assert regress(study).ratio_spread > 1.5

    def test_i7_most_overestimated(self, study):
        regression = regress(study)
        ratios = {label: ratio for label, _, _, ratio in regression.machines}
        assert ratios["i7 (45)"] > 2.0
