"""Unit tests for the study harness."""

import pytest

from repro.core.study import Study
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.runtime.methodology import protocol_for
from repro.workloads.catalog import benchmark
from repro.workloads.synthetic import synthetic


class TestMeasure:
    def test_caches_results(self, study):
        config = stock(ATOM_45)
        first = study.measure(benchmark("db"), config)
        second = study.measure(benchmark("db"), config)
        assert first is second

    def test_result_identity(self, study):
        result = study.measure(benchmark("db"), stock(ATOM_45))
        assert result.benchmark_name == "db"
        assert result.processor_key == "atom_45"
        assert result.seconds > 0
        assert result.watts > 0

    def test_invocation_scale_reduces_runs(self, references):
        quick = Study(references=references, invocation_scale=0.2)
        result = quick.measure(benchmark("db"), stock(ATOM_45))
        paper_invocations = protocol_for(benchmark("db")).invocations
        assert result.invocations == max(1, -(-paper_invocations * 20 // 100))
        assert result.invocations < paper_invocations

    def test_full_protocol_java_invocations(self, full_study):
        result = full_study.measure(benchmark("db"), stock(ATOM_45))
        assert result.invocations == 20

    def test_full_protocol_native_invocations(self, full_study):
        spec = full_study.measure(benchmark("mcf"), stock(ATOM_45))
        parsec = full_study.measure(benchmark("vips"), stock(ATOM_45))
        assert spec.invocations == 3
        assert parsec.invocations == 5

    def test_invalid_scale_rejected(self, references):
        with pytest.raises(ValueError):
            Study(references=references, invocation_scale=0.0)


class TestRun:
    def test_run_config_covers_benchmarks(self, study):
        subset = (benchmark("db"), benchmark("mcf"))
        results = study.run_config(stock(ATOM_45), subset)
        assert {r.benchmark_name for r in results} == {"db", "mcf"}

    def test_run_many_configs(self, study):
        subset = (benchmark("db"),)
        results = study.run((stock(ATOM_45), stock(CORE_I7_45)), subset)
        assert len(results) == 2
        assert set(results.config_keys()) == {
            stock(ATOM_45).key,
            stock(CORE_I7_45).key,
        }


class TestCacheKeying:
    def test_same_name_different_signature_not_conflated(self, references):
        """Regression: the cache keys by benchmark *value*, not name —
        synthetic workloads may share a name while differing entirely."""
        compute = synthetic("svc", boundness=0.05, reference_seconds=10.0)
        memory = synthetic("svc", boundness=0.95, reference_seconds=30.0)
        study = Study(references=references, invocation_scale=0.2)
        config = stock(ATOM_45)
        first = study.measure(compute, config)
        second = study.measure(memory, config)
        assert first.seconds != second.seconds
        # Both stay cached independently.
        assert study.measure(compute, config) is first
        assert study.measure(memory, config) is second

    def test_clear_cache_evicts(self, references):
        study = Study(references=references, invocation_scale=0.2)
        config = stock(ATOM_45)
        first = study.measure(benchmark("db"), config)
        assert study.is_cached(benchmark("db"), config)
        study.clear_cache()
        assert not study.is_cached(benchmark("db"), config)
        assert study.measure(benchmark("db"), config) is not first


class TestMeasurePurity:
    def test_identical_result_after_cache_eviction(self, references):
        """measure is pure: same inputs reproduce the identical RunResult
        even after eviction (re-measurement, not a stale copy)."""
        study = Study(references=references, invocation_scale=0.2)
        config = stock(CORE_I7_45)
        for name in ("db", "mcf"):
            first = study.measure(benchmark(name), config)
            study.clear_cache()
            second = study.measure(benchmark(name), config)
            assert first == second

    def test_run_fast_path_preserves_results(self, references):
        """Cached hits through run() return the very same objects measure
        produced, so the fast path cannot drift from the slow path."""
        study = Study(references=references, invocation_scale=0.2)
        benches = (benchmark("db"), benchmark("mcf"))
        first = study.run((stock(ATOM_45),), benches)
        second = study.run((stock(ATOM_45),), benches)
        assert all(a is b for a, b in zip(first, second))


class TestScaledInvocations:
    def test_planned_matches_performed(self, references):
        study = Study(references=references, invocation_scale=0.2)
        benches = (benchmark("db"), benchmark("vips"))
        configs = (stock(ATOM_45),)
        planned = study.planned_invocations(configs, benches)
        results = study.run(configs, benches)
        assert planned == sum(r.invocations for r in results)
        # A fully cached sweep plans zero new work.
        assert study.planned_invocations(configs, benches) == 0


class TestDeterminism:
    def test_two_studies_agree_exactly(self, references):
        a = Study(references=references, invocation_scale=0.2)
        b = Study(references=references, invocation_scale=0.2)
        config = stock(ATOM_45)
        ra = a.measure(benchmark("db"), config)
        rb = b.measure(benchmark("db"), config)
        assert ra.seconds == rb.seconds
        assert ra.watts == rb.watts

    def test_java_runs_vary_between_invocations(self, full_study):
        result = full_study.measure(benchmark("db"), stock(ATOM_45))
        assert result.time_ci.half_width > 0.0
