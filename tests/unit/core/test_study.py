"""Unit tests for the study harness."""

import pytest

from repro.core.study import Study
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.runtime.methodology import protocol_for
from repro.workloads.catalog import benchmark


class TestMeasure:
    def test_caches_results(self, study):
        config = stock(ATOM_45)
        first = study.measure(benchmark("db"), config)
        second = study.measure(benchmark("db"), config)
        assert first is second

    def test_result_identity(self, study):
        result = study.measure(benchmark("db"), stock(ATOM_45))
        assert result.benchmark_name == "db"
        assert result.processor_key == "atom_45"
        assert result.seconds > 0
        assert result.watts > 0

    def test_invocation_scale_reduces_runs(self, references):
        quick = Study(references=references, invocation_scale=0.2)
        result = quick.measure(benchmark("db"), stock(ATOM_45))
        paper_invocations = protocol_for(benchmark("db")).invocations
        assert result.invocations == max(1, -(-paper_invocations * 20 // 100))
        assert result.invocations < paper_invocations

    def test_full_protocol_java_invocations(self, full_study):
        result = full_study.measure(benchmark("db"), stock(ATOM_45))
        assert result.invocations == 20

    def test_full_protocol_native_invocations(self, full_study):
        spec = full_study.measure(benchmark("mcf"), stock(ATOM_45))
        parsec = full_study.measure(benchmark("vips"), stock(ATOM_45))
        assert spec.invocations == 3
        assert parsec.invocations == 5

    def test_invalid_scale_rejected(self, references):
        with pytest.raises(ValueError):
            Study(references=references, invocation_scale=0.0)


class TestRun:
    def test_run_config_covers_benchmarks(self, study):
        subset = (benchmark("db"), benchmark("mcf"))
        results = study.run_config(stock(ATOM_45), subset)
        assert {r.benchmark_name for r in results} == {"db", "mcf"}

    def test_run_many_configs(self, study):
        subset = (benchmark("db"),)
        results = study.run((stock(ATOM_45), stock(CORE_I7_45)), subset)
        assert len(results) == 2
        assert set(results.config_keys()) == {
            stock(ATOM_45).key,
            stock(CORE_I7_45).key,
        }


class TestDeterminism:
    def test_two_studies_agree_exactly(self, references):
        a = Study(references=references, invocation_scale=0.2)
        b = Study(references=references, invocation_scale=0.2)
        config = stock(ATOM_45)
        ra = a.measure(benchmark("db"), config)
        rb = b.measure(benchmark("db"), config)
        assert ra.seconds == rb.seconds
        assert ra.watts == rb.watts

    def test_java_runs_vary_between_invocations(self, full_study):
        result = full_study.measure(benchmark("db"), stock(ATOM_45))
        assert result.time_ci.half_width > 0.0
