"""Unit tests for result records and datasets."""

import pytest

from repro.core.results import CSV_COLUMNS, ResultSet, RunResult, from_csv
from repro.core.statistics import ConfidenceInterval
from repro.workloads.benchmark import Group


def _result(name="db", config="i7_45/4C2T@2.66+TB", processor="i7_45",
            seconds=2.0, watts=30.0) -> RunResult:
    ci = ConfidenceInterval(mean=seconds, half_width=0.02, confidence=0.95, n=5)
    pci = ConfidenceInterval(mean=watts, half_width=0.5, confidence=0.95, n=5)
    return RunResult(
        benchmark_name=name,
        group=Group.JAVA_NONSCALABLE,
        processor_key=processor,
        config_key=config,
        seconds=seconds,
        watts=watts,
        speedup=3.4,
        normalized_energy=0.4,
        time_ci=ci,
        power_ci=pci,
        invocations=5,
    )


class TestRunResult:
    def test_energy(self):
        assert _result(seconds=2.0, watts=30.0).energy_joules == pytest.approx(60.0)

    def test_benchmark_lookup(self):
        assert _result("db").benchmark.name == "db"

    def test_metric_access(self):
        r = _result()
        assert r.metric("watts") == 30.0
        assert r.metric("energy_joules") == pytest.approx(60.0)
        with pytest.raises(KeyError):
            r.metric("nope")

    def test_as_row_has_all_csv_columns(self):
        row = _result().as_row()
        assert set(row) == set(CSV_COLUMNS)


class TestResultSet:
    def test_filters(self):
        rs = ResultSet([_result("db"), _result("mcf", processor="i5_32",
                                                config="i5_32/2C2T@3.46+TB")])
        assert len(rs.for_processor("i5_32")) == 1
        assert len(rs.for_benchmark("db")) == 1
        assert len(rs.for_config("i7_45/4C2T@2.66+TB")) == 1
        assert len(rs.for_group(Group.JAVA_NONSCALABLE)) == 2

    def test_single(self):
        rs = ResultSet([_result("db")])
        assert rs.single().benchmark_name == "db"
        with pytest.raises(ValueError):
            ResultSet([]).single()

    def test_values_projection(self):
        rs = ResultSet([_result("db", watts=10.0), _result("mcf", watts=20.0)])
        assert rs.values("watts") == {"db": 10.0, "mcf": 20.0}

    def test_values_rejects_duplicates(self):
        rs = ResultSet([_result("db"), _result("db", config="i7_45/1C1T@1.6-TB")])
        with pytest.raises(ValueError):
            rs.values("watts")

    def test_merge(self):
        merged = ResultSet([_result("db")]).merged_with(ResultSet([_result("mcf")]))
        assert len(merged) == 2

    def test_config_keys_ordered_unique(self):
        rs = ResultSet([_result("db"), _result("mcf")])
        assert rs.config_keys() == ("i7_45/4C2T@2.66+TB",)

    def test_csv_round_trip(self, tmp_path):
        rs = ResultSet([_result("db"), _result("mcf")])
        path = rs.to_csv(tmp_path / "data.csv")
        records = from_csv(path)
        assert len(records) == 2
        assert records[0]["benchmark"] == "db"
        assert float(records[0]["watts"]) == pytest.approx(30.0)
        assert records[0]["group"] == Group.JAVA_NONSCALABLE.value
