"""Unit tests for the group aggregation of §2.6."""

import pytest

from repro.core.aggregation import (
    benchmark_average,
    full_aggregate,
    group_means,
    per_group_ratio,
    ratio_of_aggregates,
    weighted_average,
)
from repro.workloads.benchmark import Group
from repro.workloads.catalog import BENCHMARKS, by_group


def _values(value_by_group: dict[Group, float]) -> dict[str, float]:
    """One value per benchmark, constant within each group."""
    return {
        b.name: value_by_group[b.group] for b in BENCHMARKS
    }


class TestGroupMeans:
    def test_constant_groups_recovered(self):
        values = _values({g: float(i) for i, g in enumerate(Group, start=1)})
        means = group_means(values, BENCHMARKS)
        for i, group in enumerate(Group, start=1):
            assert means[group] == pytest.approx(float(i))

    def test_missing_benchmarks_ignored(self):
        some = {b.name: 2.0 for b in by_group(Group.NATIVE_SCALABLE)}
        means = group_means(some, BENCHMARKS)
        assert set(means) == {Group.NATIVE_SCALABLE}

    def test_arithmetic_mean_within_group(self):
        ns = by_group(Group.NATIVE_SCALABLE)
        values = {b.name: float(i) for i, b in enumerate(ns)}
        means = group_means(values, BENCHMARKS)
        assert means[Group.NATIVE_SCALABLE] == pytest.approx(
            sum(range(len(ns))) / len(ns)
        )


class TestWeightedAverage:
    def test_equal_group_weighting(self):
        # 27 NN benchmarks at 1.0 must not outvote 5 JS benchmarks at 3.0.
        values = _values(
            {
                Group.NATIVE_NONSCALABLE: 1.0,
                Group.NATIVE_SCALABLE: 1.0,
                Group.JAVA_NONSCALABLE: 1.0,
                Group.JAVA_SCALABLE: 3.0,
            }
        )
        avg_w = weighted_average(group_means(values, BENCHMARKS))
        assert avg_w == pytest.approx(1.5)

    def test_differs_from_benchmark_average(self):
        values = _values(
            {
                Group.NATIVE_NONSCALABLE: 1.0,
                Group.NATIVE_SCALABLE: 1.0,
                Group.JAVA_NONSCALABLE: 1.0,
                Group.JAVA_SCALABLE: 3.0,
            }
        )
        avg_b = benchmark_average(values)
        # 5 of 61 benchmarks at 3.0: Avg_b stays near 1.16.
        assert avg_b == pytest.approx(1.0 + 2.0 * 5 / 61)
        assert avg_b < weighted_average(group_means(values, BENCHMARKS))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_average({})


class TestFullAggregate:
    def test_has_table4_columns(self):
        values = {b.name: 1.0 for b in BENCHMARKS}
        row = full_aggregate(values, BENCHMARKS)
        for column in ("Avg_w", "Avg_b", "Min", "Max"):
            assert column in row
        for group in Group:
            assert group.value in row

    def test_min_max(self):
        values = {b.name: float(i) for i, b in enumerate(BENCHMARKS, start=1)}
        row = full_aggregate(values, BENCHMARKS)
        assert row["Min"] == 1.0
        assert row["Max"] == float(len(BENCHMARKS))


class TestRatios:
    def test_ratio_of_identical_sides_is_one(self):
        values = {b.name: 2.0 for b in BENCHMARKS}
        assert ratio_of_aggregates(values, values, BENCHMARKS) == pytest.approx(1.0)

    def test_ratio_is_mean_of_per_benchmark_ratios(self):
        num = {b.name: 3.0 for b in BENCHMARKS}
        den = {b.name: 1.5 for b in BENCHMARKS}
        assert ratio_of_aggregates(num, den, BENCHMARKS) == pytest.approx(2.0)

    def test_disjoint_sides_rejected(self):
        with pytest.raises(ValueError):
            ratio_of_aggregates({"a": 1.0}, {"b": 1.0}, BENCHMARKS)

    def test_per_group_ratio_groups(self):
        num = _values({g: 2.0 for g in Group})
        den = _values({g: 1.0 for g in Group})
        ratios = per_group_ratio(num, den, BENCHMARKS)
        assert set(ratios) == set(Group)
        assert all(v == pytest.approx(2.0) for v in ratios.values())
