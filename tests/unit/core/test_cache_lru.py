"""Unit tests for the capacity-bounded (LRU) study result cache.

An unbounded cache is right for one campaign (the paper's dataset is
61x45 and fits trivially); a long-lived measurement server needs a cap.
The cap must never change *what* is measured — only whether a repeat
request hits memory or re-derives the identical bytes.
"""

import json

import pytest

from repro.core.study import Study
from repro.hardware.catalog import ATOM_45, CORE2DUO_45, CORE_I7_45
from repro.hardware.config import stock
from repro.obs.metrics import default_registry
from repro.workloads.catalog import benchmark

MCF = benchmark("mcf")
I7 = stock(CORE_I7_45)
ATOM = stock(ATOM_45)
CORE2 = stock(CORE2DUO_45)


def _study(references, **kwargs):
    return Study(references=references, invocation_scale=0.2, **kwargs)


def _evictions() -> float:
    return default_registry().get("repro_study_cache_evictions_total").value


class TestCapacity:
    def test_unbounded_by_default(self, references):
        study = _study(references)
        assert study.cache_capacity is None
        for config in (I7, ATOM, CORE2):
            study.measure(MCF, config)
        assert study.cached_pairs == 3

    def test_capacity_bounds_the_cache(self, references):
        study = _study(references, cache_capacity=2)
        for config in (I7, ATOM, CORE2):
            study.measure(MCF, config)
        assert study.cached_pairs == 2

    def test_oldest_entry_is_evicted_first(self, references):
        study = _study(references, cache_capacity=2)
        study.measure(MCF, I7)
        study.measure(MCF, ATOM)
        study.measure(MCF, CORE2)  # evicts I7, the oldest
        assert not study.is_cached(MCF, I7)
        assert study.is_cached(MCF, ATOM)
        assert study.is_cached(MCF, CORE2)

    def test_cache_hit_refreshes_recency(self, references):
        study = _study(references, cache_capacity=2)
        study.measure(MCF, I7)
        study.measure(MCF, ATOM)
        study.measure(MCF, I7)  # hit: I7 becomes most recent
        study.measure(MCF, CORE2)  # so ATOM is evicted, not I7
        assert study.is_cached(MCF, I7)
        assert not study.is_cached(MCF, ATOM)

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_rejects_degenerate_capacity(self, references, capacity):
        with pytest.raises(ValueError):
            _study(references, cache_capacity=capacity)


class TestDeterminismUnderEviction:
    def test_remeasuring_an_evicted_pair_is_byte_identical(self, references):
        bounded = _study(references, cache_capacity=1)
        first = bounded.measure(MCF, I7)
        bounded.measure(MCF, ATOM)  # evicts the I7 result
        again = bounded.measure(MCF, I7)  # cache miss: re-measures
        assert json.dumps(again.as_record()) == json.dumps(first.as_record())

    def test_bounded_sweep_matches_unbounded_bytes(self, references):
        configs = (I7, ATOM, CORE2)
        unbounded = _study(references).run(configs, [MCF])
        bounded = _study(references, cache_capacity=1).run(configs, [MCF])
        assert [json.dumps(r.as_record()) for r in bounded] == [
            json.dumps(r.as_record()) for r in unbounded
        ]


class TestEvictionAccounting:
    def test_evictions_metric_counts(self, references):
        before = _evictions()
        study = _study(references, cache_capacity=1)
        study.measure(MCF, I7)
        study.measure(MCF, ATOM)
        study.measure(MCF, CORE2)
        assert _evictions() - before == 2

    def test_evicted_restored_pairs_lose_restored_status(self, references):
        """A restored-then-evicted pair must not be double-counted as
        restored if warm-started again later."""
        source = _study(references)
        records = [source.measure(MCF, c) for c in (I7, ATOM)]
        study = _study(references, cache_capacity=1)
        assert study.restore_records(records) == 2  # second restore evicts first
        assert study.cached_pairs == 1
        # The evicted pair restores cleanly a second time.
        assert study.restore_records(records[:1]) == 1
