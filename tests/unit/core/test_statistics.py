"""Unit tests for the statistics primitives (Table 2, §2.5 machinery)."""

import math

import pytest

from repro.core.statistics import (
    confidence_interval,
    geometric_mean,
    linear_fit,
    mean,
    relative_range,
    sample_std,
)


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_single(self):
        assert mean([5.0]) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])


class TestStd:
    def test_known_value(self):
        assert sample_std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            2.138, abs=1e-3
        )

    def test_single_sample_is_zero(self):
        assert sample_std([3.0]) == 0.0

    def test_constant_samples(self):
        assert sample_std([2.0, 2.0, 2.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sample_std([])


class TestConfidenceInterval:
    def test_symmetry(self):
        ci = confidence_interval([9.0, 10.0, 11.0])
        assert ci.upper - ci.mean == pytest.approx(ci.mean - ci.lower)

    def test_contains_mean(self):
        ci = confidence_interval([9.0, 10.0, 11.0])
        assert ci.contains(10.0)

    def test_single_sample_zero_width(self):
        ci = confidence_interval([10.0])
        assert ci.half_width == 0.0
        assert ci.relative_error == 0.0

    def test_constant_samples_zero_width(self):
        ci = confidence_interval([5.0] * 10)
        assert ci.half_width == 0.0

    def test_more_samples_narrow_the_interval(self):
        few = confidence_interval([9.0, 10.0, 11.0])
        many = confidence_interval([9.0, 10.0, 11.0] * 10)
        assert many.half_width < few.half_width

    def test_relative_error(self):
        ci = confidence_interval([9.0, 10.0, 11.0])
        assert ci.relative_error == pytest.approx(ci.half_width / 10.0)

    def test_known_t_value(self):
        # n=3, 95%: t = 4.303; std = 1; half width = 4.303 / sqrt(3)
        ci = confidence_interval([9.0, 10.0, 11.0])
        assert ci.half_width == pytest.approx(4.303 / math.sqrt(3), rel=1e-3)

    def test_higher_confidence_wider(self):
        samples = [9.0, 10.0, 11.0, 10.5]
        assert (
            confidence_interval(samples, 0.99).half_width
            > confidence_interval(samples, 0.95).half_width
        )

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], confidence=1.0)


class TestLinearFit:
    def test_perfect_line(self):
        fit = linear_fit([0.0, 1.0, 2.0], [1.0, 3.0, 5.0])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict_and_invert_are_inverse(self):
        fit = linear_fit([0.0, 1.0, 2.0, 3.0], [1.0, 2.9, 5.1, 7.0])
        assert fit.invert(fit.predict(1.7)) == pytest.approx(1.7)

    def test_noise_reduces_r_squared(self):
        clean = linear_fit([0, 1, 2, 3], [0, 2, 4, 6])
        noisy = linear_fit([0, 1, 2, 3], [0, 2.5, 3.5, 6])
        assert noisy.r_squared < clean.r_squared

    def test_flat_fit_cannot_invert(self):
        fit = linear_fit([0.0, 1.0, 2.0], [3.0, 3.0, 3.0])
        with pytest.raises(ValueError):
            fit.invert(3.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [1.0, 2.0])

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [1.0])


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestRelativeRange:
    def test_known_value(self):
        assert relative_range([2.0, 2.6]) == pytest.approx(0.3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            relative_range([0.0, 1.0])


class TestMedianAbsDeviation:
    def test_known_value(self):
        from repro.core.statistics import median_abs_deviation

        # median 3; |x - 3| = [2, 1, 0, 1, 2] whose median is 1.
        assert median_abs_deviation([1.0, 2.0, 3.0, 4.0, 5.0]) == 1.0

    def test_constant_samples_have_zero_mad(self):
        from repro.core.statistics import median_abs_deviation

        assert median_abs_deviation([7.0, 7.0, 7.0, 7.0]) == 0.0


class TestMadOutlierIndices:
    def test_flags_the_gross_outlier(self):
        from repro.core.statistics import mad_outlier_indices

        samples = [10.0, 10.1, 9.9, 10.05, 50.0]
        assert mad_outlier_indices(samples) == (4,)

    def test_clean_samples_flag_nothing(self):
        from repro.core.statistics import mad_outlier_indices

        assert mad_outlier_indices([10.0, 10.1, 9.9, 10.05]) == ()

    def test_small_and_degenerate_samples_are_never_flagged(self):
        from repro.core.statistics import mad_outlier_indices

        # Fewer than four samples: no robust scale estimate.
        assert mad_outlier_indices([1.0, 100.0, 1.0]) == ()
        # Zero MAD (majority identical): the screen abstains rather than
        # dividing by zero and flagging everything off-median.
        assert mad_outlier_indices([5.0, 5.0, 5.0, 5.0, 9.0]) == ()

    def test_threshold_tightens_the_screen(self):
        from repro.core.statistics import mad_outlier_indices

        samples = [10.0, 10.4, 9.6, 10.2, 9.8, 11.5]
        loose = mad_outlier_indices(samples, threshold=10.0)
        tight = mad_outlier_indices(samples, threshold=2.0)
        assert set(loose) <= set(tight)
