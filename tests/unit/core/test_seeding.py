"""Unit tests for deterministic seeding."""

from repro.core.seeding import rng_for, run_key, seed_from_key


class TestSeeds:
    def test_same_key_same_seed(self):
        assert seed_from_key("a") == seed_from_key("a")

    def test_different_keys_differ(self):
        assert seed_from_key("a") != seed_from_key("b")

    def test_root_changes_seed(self):
        assert seed_from_key("a", root="x") != seed_from_key("a", root="y")

    def test_seed_fits_64_bits(self):
        assert 0 <= seed_from_key("anything") < 2**64


class TestGenerators:
    def test_identical_streams_for_same_key(self):
        a = rng_for("sensor/i7").normal(size=10)
        b = rng_for("sensor/i7").normal(size=10)
        assert (a == b).all()

    def test_independent_streams_for_different_keys(self):
        a = rng_for("sensor/i7").normal(size=10)
        b = rng_for("sensor/i5").normal(size=10)
        assert (a != b).any()


class TestRunKey:
    def test_joins_parts(self):
        assert run_key("a", 1, 2.5) == "a/1/2.5"

    def test_distinct_structures_distinct_keys(self):
        assert run_key("a", "b/c") != run_key("a", "b", "d")
