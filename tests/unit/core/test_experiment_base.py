"""Unit tests for the experiment framework helpers."""

import pytest

from repro.experiments.base import (
    ExperimentResult,
    doubling_normalised,
    paper_measured,
)
from repro.experiments.features import FeatureEffect, effect_row, group_energy_rows
from repro.workloads.benchmark import Group


class TestDoublingNormalisation:
    def test_exact_doubling_is_identity(self):
        assert doubling_normalised(1.8, 2.0) == pytest.approx(1.8)

    def test_quadrupling_takes_square_root(self):
        assert doubling_normalised(4.0, 4.0) == pytest.approx(2.0)

    def test_sub_doubling_extrapolates(self):
        # A 1.41x frequency span showing 1.5x must be steeper per doubling.
        assert doubling_normalised(1.5, 2.0**0.5) == pytest.approx(2.25)

    def test_unity_ratio_stays_unity(self):
        assert doubling_normalised(1.0, 1.66) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            doubling_normalised(0.0, 2.0)
        with pytest.raises(ValueError):
            doubling_normalised(1.5, 1.0)


class TestExperimentResult:
    def test_requires_rows(self):
        with pytest.raises(ValueError):
            ExperimentResult("x", "t", "s", rows=())

    def test_paper_measured_helper(self):
        row = paper_measured(1.234567, 1.111111)
        assert row["paper"] == 1.235
        assert row["measured"] == 1.111
        assert paper_measured(None, 1.0)["paper"] is None


class TestFeatureRows:
    def _effect(self) -> FeatureEffect:
        return FeatureEffect(
            label="x",
            numerator="a",
            denominator="b",
            performance=1.3,
            power=1.5,
            energy=1.1,
            energy_by_group={Group.NATIVE_SCALABLE: 0.9},
        )

    def test_effect_row_shape(self):
        row = effect_row(self._effect(), {"performance": 1.32, "power": 1.57,
                                          "energy": 1.12})
        assert row["performance"] == 1.3
        assert row["paper_power"] == 1.57

    def test_effect_row_without_paper(self):
        row = effect_row(self._effect())
        assert "paper_power" not in row

    def test_group_energy_rows(self):
        rows = group_energy_rows(self._effect(), {Group.NATIVE_SCALABLE: 0.87})
        assert rows[0]["group"] == Group.NATIVE_SCALABLE.value
        assert rows[0]["energy"] == 0.9
        assert rows[0]["paper_energy"] == 0.87
