"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


def _run(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestList:
    def test_processors(self, capsys):
        out = _run(capsys, "list", "processors")
        assert "i7_45" in out
        assert "Nehalem" in out

    def test_benchmarks(self, capsys):
        out = _run(capsys, "list", "benchmarks")
        assert "fluidanimate" in out
        assert out.count("\n") >= 61

    def test_configurations(self, capsys):
        out = _run(capsys, "list", "configurations")
        assert out.count("\n") >= 45

    def test_experiments(self, capsys):
        out = _run(capsys, "list", "experiments")
        assert "fig12" in out
        assert "ext_thermal" in out


class TestMeasure:
    def test_stock_measurement(self, capsys):
        out = _run(capsys, "--quick", "measure", "db", "atom_45")
        assert "atom_45" in out
        assert "db" in out

    def test_configured_measurement(self, capsys):
        out = _run(
            capsys, "--quick", "measure", "xalan", "i7_45",
            "--cores", "2", "--threads", "1", "--clock", "1.6",
        )
        assert "i7_45/2C1T@1.6-TB" in out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["--quick", "measure", "nope", "i7_45"])


class TestRobustnessFlags:
    def test_measure_under_injection_recovers(self, capsys):
        out = _run(
            capsys, "--quick", "measure", "db", "atom_45",
            "--inject", "ci", "--max-retries", "8",
        )
        assert "db" in out

    def test_bad_plan_exits_with_error(self, capsys):
        assert main(
            ["--quick", "measure", "db", "atom_45", "--inject", "/no/plan.json"]
        ) == 2
        assert "--inject" in capsys.readouterr().err

    def test_checkpoint_then_resume(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "c.jsonl")
        first = _run(
            capsys, "--quick", "measure", "db", "atom_45",
            "--checkpoint", checkpoint,
        )
        assert main(
            ["--quick", "measure", "db", "atom_45",
             "--checkpoint", checkpoint, "--resume", checkpoint]
        ) == 0
        captured = capsys.readouterr()
        assert "resumed 1 results" in captured.err
        assert captured.out == first

    def test_resume_same_as_checkpoint_is_a_cold_start(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "fresh.jsonl")
        _run(
            capsys, "--quick", "measure", "db", "atom_45",
            "--checkpoint", checkpoint, "--resume", checkpoint,
        )

    def test_exhausted_retries_exit_cleanly(self, capsys, tmp_path):
        from repro.faults.plan import FaultPlan, FaultSpec

        plan_path = tmp_path / "always_crash.json"
        FaultPlan(
            specs=(FaultSpec(kind="invocation.crash", probability=1.0),)
        ).to_json(plan_path)
        assert main(
            ["--quick", "measure", "db", "atom_45",
             "--inject", str(plan_path), "--max-retries", "1"]
        ) == 3
        assert "measurement failed" in capsys.readouterr().err

    def test_missing_resume_file_errors(self, capsys, tmp_path):
        assert main(
            ["--quick", "measure", "db", "atom_45",
             "--resume", str(tmp_path / "nope.jsonl")]
        ) == 2
        assert "--resume" in capsys.readouterr().err

    def test_missing_checkpoint_directory_errors(self, capsys, tmp_path):
        assert main(
            ["--quick", "measure", "db", "atom_45",
             "--checkpoint", str(tmp_path / "no/such/dir/c.jsonl")]
        ) == 2
        assert "--checkpoint" in capsys.readouterr().err


class TestOtherCommands:
    def test_experiment(self, capsys):
        out = _run(capsys, "--quick", "experiment", "table3")
        assert "Table 3" in out

    def test_extension_experiment(self, capsys):
        out = _run(capsys, "--quick", "experiment", "ext_thermal")
        assert "Thermal headroom" in out

    def test_figure(self, capsys):
        out = _run(capsys, "--quick", "figure", "fig11")
        assert "power (W)" in out

    def test_dataset(self, capsys, tmp_path):
        out_path = tmp_path / "d.csv"
        out = _run(capsys, "--quick", "dataset", str(out_path))
        assert "488 rows" in out  # 8 stock configs x 61 benchmarks
        assert out_path.exists()

    def test_bad_command_exits(self):
        with pytest.raises(SystemExit):
            main(["explode"])


class TestResumeFingerprint:
    """--resume refuses checkpoints written under different run
    parameters (exit code 4 + a hint), instead of mixing datasets."""

    def _write_checkpoint(self, capsys, tmp_path, *flags) -> str:
        checkpoint = str(tmp_path / "c.jsonl")
        _run(
            capsys, "--quick", "measure", "db", "atom_45",
            "--checkpoint", checkpoint, *flags,
        )
        return checkpoint

    def test_checkpoint_writes_fingerprint_sidecar(self, capsys, tmp_path):
        from repro.core.study import read_checkpoint_meta

        checkpoint = self._write_checkpoint(capsys, tmp_path)
        meta = read_checkpoint_meta(checkpoint)
        assert meta is not None
        assert meta["invocation_scale"] == 0.2
        assert meta["fault_plan"] is None

    def test_plan_mismatch_exits_4_with_hint(self, capsys, tmp_path):
        checkpoint = self._write_checkpoint(capsys, tmp_path, "--inject", "ci")
        assert main(
            ["--quick", "measure", "db", "atom_45", "--resume", checkpoint]
        ) == 4
        err = capsys.readouterr().err
        assert "different run" in err
        assert "hint:" in err

    def test_scale_mismatch_exits_4(self, capsys, tmp_path):
        checkpoint = self._write_checkpoint(capsys, tmp_path)
        # Same command without --quick: invocation_scale 1.0 vs 0.2.
        assert main(["measure", "db", "atom_45", "--resume", checkpoint]) == 4
        assert "invocation_scale" in capsys.readouterr().err

    def test_matching_fingerprint_resumes(self, capsys, tmp_path):
        checkpoint = self._write_checkpoint(capsys, tmp_path, "--inject", "ci")
        assert main(
            ["--quick", "measure", "db", "atom_45",
             "--resume", checkpoint, "--inject", "ci"]
        ) == 0
        assert "resumed 1 results" in capsys.readouterr().err

    def test_checkpoint_without_sidecar_resumes_unchecked(
        self, capsys, tmp_path
    ):
        from repro.core.study import checkpoint_meta_path

        checkpoint = self._write_checkpoint(capsys, tmp_path)
        checkpoint_meta_path(checkpoint).unlink()  # a pre-sidecar checkpoint
        assert main(
            ["--quick", "measure", "db", "atom_45", "--resume", checkpoint]
        ) == 0
