"""Unit tests for the study's survival layer: retries, quarantine,
campaign health, checkpoint/resume, and input validation.

Every test arms its own plan via ``injected`` (an empty plan for the
clean-baseline cases), so the suite behaves identically whether or not
the CI fault matrix has armed a session-wide plan.
"""

import json
import math

import pytest

from repro.core.results import CampaignHealth, QuarantineEntry
from repro.core.study import Study
from repro.faults.errors import RetriesExhausted
from repro.faults.injector import injected
from repro.faults.plan import FaultPlan, FaultSpec, fail_stop_plan
from repro.faults.retry import RetryPolicy
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.workloads.catalog import benchmark

CLEAN = FaultPlan()  # no specs: overrides any session-wide plan with silence

CONFIGS = (stock(CORE_I7_45), stock(ATOM_45))
BENCHES = (benchmark("mcf"), benchmark("db"))


def _study(references, **kwargs):
    kwargs.setdefault("invocation_scale", 0.2)
    return Study(references=references, **kwargs)


def _records(result_set):
    return [r.as_record() for r in result_set]


class TestRetryTransparency:
    def test_recovered_fail_stop_faults_reproduce_clean_results(
        self, references
    ):
        with injected(CLEAN):
            clean = _study(references).run(CONFIGS, BENCHES)
        # Seed chosen so the plan demonstrably fires on this small sweep
        # (several timeouts and dropouts across the ten invocations).
        with injected(fail_stop_plan(probability=0.1, seed="t2")):
            faulted = _study(
                references, retry=RetryPolicy(max_retries=10)
            ).run(CONFIGS, BENCHES)
        assert faulted.health is not None
        assert faulted.health.retries > 0  # the plan really fired
        assert faulted.health.ok
        assert _records(faulted) == _records(clean)


class TestQuarantine:
    def _always_crashing(self, references):
        plan = FaultPlan(
            specs=(FaultSpec(kind="invocation.crash", probability=1.0),)
        )
        return injected(plan), _study(references)

    def test_run_survives_a_pair_that_never_succeeds(self, references):
        ctx, study = self._always_crashing(references)
        with ctx:
            results = study.run(CONFIGS[:1], BENCHES[:1])
        assert len(results) == 0
        health = results.health
        assert not health.ok
        assert [q.benchmark_name for q in health.quarantined] == ["mcf"]
        assert health.failures.get("InvocationCrash", 0) > 0
        assert study.is_quarantined(BENCHES[0], CONFIGS[0])

    def test_measure_raises_for_quarantined_pair_without_rerunning(
        self, references
    ):
        ctx, study = self._always_crashing(references)
        with ctx:
            study.run(CONFIGS[:1], BENCHES[:1])
        # Even with the injector disarmed the pair stays quarantined.
        with injected(CLEAN):
            with pytest.raises(RetriesExhausted, match="quarantined"):
                study.measure(BENCHES[0], CONFIGS[0])

    def test_clear_quarantine_gives_the_pair_another_chance(self, references):
        ctx, study = self._always_crashing(references)
        with ctx:
            study.run(CONFIGS[:1], BENCHES[:1])
        study.clear_quarantine()
        assert study.quarantined == ()
        with injected(CLEAN):
            result = study.measure(BENCHES[0], CONFIGS[0])
        assert math.isfinite(result.watts)

    def test_quarantined_pairs_are_excluded_from_planning(self, references):
        ctx, study = self._always_crashing(references)
        before = study.planned_invocations(CONFIGS[:1], BENCHES[:1])
        assert before > 0
        with ctx:
            study.run(CONFIGS[:1], BENCHES[:1])
        assert study.planned_invocations(CONFIGS[:1], BENCHES[:1]) == 0

    def test_retries_exhausted_carries_the_last_error(self, references):
        ctx, study = self._always_crashing(references)
        with ctx:
            with pytest.raises(RetriesExhausted) as excinfo:
                study.measure(BENCHES[0], CONFIGS[0])
        assert excinfo.value.last_error is not None
        assert type(excinfo.value.last_error).__name__ == "InvocationCrash"


class TestCampaignHealth:
    def test_clean_sweep_accounting(self, references):
        study = _study(references)
        with injected(CLEAN):
            first = study.run(CONFIGS, BENCHES).health
            second = study.run(CONFIGS, BENCHES).health
        assert first == CampaignHealth(
            attempted_pairs=4, measured_pairs=4
        )
        assert second == CampaignHealth(attempted_pairs=4, cached_pairs=4)
        assert first.ok and second.ok

    def test_merged_accumulates(self):
        a = CampaignHealth(
            attempted_pairs=2,
            measured_pairs=1,
            retries=3,
            failures={"InvocationCrash": 3},
            quarantined=(QuarantineEntry("db", "cfg", "why"),),
        )
        b = CampaignHealth(
            attempted_pairs=1,
            cached_pairs=1,
            failures={"InvocationCrash": 1, "LoggerDropout": 2},
        )
        merged = a.merged(b)
        assert merged.attempted_pairs == 3
        assert merged.failures == {"InvocationCrash": 4, "LoggerDropout": 2}
        assert merged.total_failures == 6
        assert len(merged.quarantined) == 1

    def test_summary_mentions_quarantine(self):
        health = CampaignHealth(
            attempted_pairs=1,
            quarantined=(QuarantineEntry("db", "cfg", "kept crashing"),),
        )
        text = health.summary()
        assert "quarantined (1)" in text
        assert "kept crashing" in text
        assert "quarantined: none" in CampaignHealth().summary()


class TestCheckpoint:
    def test_append_and_restore_round_trip(self, references, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with injected(CLEAN):
            writer = _study(references, checkpoint_path=path)
            original = writer.run(CONFIGS[:1], BENCHES)
            assert len(path.read_text().splitlines()) == 2

            reader = _study(references)
            assert reader.restore_checkpoint(path) == 2
            resumed = reader.run(CONFIGS[:1], BENCHES)
        assert _records(resumed) == _records(original)
        assert resumed.health.restored_pairs == 2
        assert resumed.health.measured_pairs == 0

    def test_restore_skips_truncated_and_unknown_lines(
        self, references, tmp_path
    ):
        path = tmp_path / "campaign.jsonl"
        with injected(CLEAN):
            writer = _study(references, checkpoint_path=path)
            writer.measure(BENCHES[0], CONFIGS[0])
        good = path.read_text()
        mangled = json.loads(good.splitlines()[0])
        mangled["benchmark"] = "no-such-benchmark"
        path.write_text(
            good
            + json.dumps(mangled)
            + "\n"
            + good.splitlines()[0][: len(good) // 2]  # killed mid-write
        )
        reader = _study(references)
        assert reader.restore_checkpoint(path) == 1

    def test_save_checkpoint_dumps_the_whole_cache(self, references, tmp_path):
        with injected(CLEAN):
            study = _study(references)
            study.run(CONFIGS[:1], BENCHES)
            path = study.save_checkpoint(tmp_path / "dump.jsonl")
            reader = _study(references)
            assert reader.restore_checkpoint(path) == 2

    def test_enable_checkpoint_starts_appending(self, references, tmp_path):
        path = tmp_path / "late.jsonl"
        with injected(CLEAN):
            study = _study(references)
            study.measure(BENCHES[0], CONFIGS[0])
            assert not path.exists()
            study.enable_checkpoint(path)
            study.measure(BENCHES[1], CONFIGS[0])
        assert len(path.read_text().splitlines()) == 1


class TestOutlierRemeasurement:
    def test_mad_screen_replaces_a_corrupted_invocation(self, references):
        # Drift invocation 0 of db massively; the screen should re-measure
        # it (at a fresh salt index, which the scope no longer matches) and
        # land near the clean mean.
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="sensor.drift",
                    probability=1.0,
                    scope="*/db/0",
                    magnitude=400.0,
                ),
            )
        )
        with injected(CLEAN):
            clean = _study(references).measure(benchmark("db"), CONFIGS[0])
        screened_policy = RetryPolicy(outlier_threshold=3.5, max_remeasures=2)
        with injected(plan):
            unscreened = _study(references).run(
                CONFIGS[:1], (benchmark("db"),)
            )
            screened = _study(references, retry=screened_policy).run(
                CONFIGS[:1], (benchmark("db"),)
            )
        assert unscreened.health.remeasured_outliers == 0
        assert screened.health.remeasured_outliers == 1
        corrupted_watts = next(iter(unscreened)).watts
        screened_watts = next(iter(screened)).watts
        assert abs(screened_watts - clean.watts) < abs(
            corrupted_watts - clean.watts
        )
        assert screened_watts == pytest.approx(clean.watts, rel=0.05)

    def test_screen_off_by_default_keeps_protocol_identical(self, references):
        assert _study(references).retry_policy.outlier_threshold is None


class TestSingletonHygiene:
    """Two ordered tests proving the ``clean_singletons`` fixture (built
    on ``reset_meters`` / ``reset_shared_study``) isolates rig state."""

    def test_fixture_starts_from_pristine_singletons(self, clean_singletons):
        from repro.core.study import _SHARED_STUDY, shared_study
        from repro.measurement.meter import _METERS, meter_for

        assert _SHARED_STUDY is None and not _METERS
        shared_study()
        meter_for(CORE_I7_45)
        from repro.core.study import _SHARED_STUDY as populated

        assert populated is not None and _METERS

    def test_previous_tests_state_did_not_leak(self, clean_singletons):
        from repro.core.study import _SHARED_STUDY
        from repro.measurement.meter import _METERS

        assert _SHARED_STUDY is None and not _METERS


class TestValidation:
    @pytest.mark.parametrize("scale", [math.nan, math.inf, -math.inf, 0.0, -1.0])
    def test_invocation_scale_must_be_positive_finite(self, scale):
        with pytest.raises(ValueError, match="invocation scale"):
            Study(invocation_scale=scale)

    def test_timeout_budget_quarantines_chronic_hangs(self, references):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="invocation.hang", probability=1.0, magnitude=500.0
                ),
            )
        )
        policy = RetryPolicy(max_retries=10, timeout_budget_s=900.0)
        study = _study(references, retry=policy)
        with injected(plan):
            with pytest.raises(RetriesExhausted, match="budget"):
                study.measure(BENCHES[0], CONFIGS[0])
