"""Unit tests for the Pareto analysis (§4.2)."""

import pytest

from repro.core.pareto import (
    TradeoffPoint,
    fit_frontier,
    pareto_efficient,
)


def _p(key: str, perf: float, energy: float) -> TradeoffPoint:
    return TradeoffPoint(key=key, performance=perf, energy=energy)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert _p("a", 2.0, 0.5).dominates(_p("b", 1.0, 1.0))

    def test_equal_points_do_not_dominate(self):
        a, b = _p("a", 1.0, 1.0), _p("b", 1.0, 1.0)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_tradeoff_points_do_not_dominate(self):
        fast_hungry = _p("a", 2.0, 2.0)
        slow_frugal = _p("b", 1.0, 1.0)
        assert not fast_hungry.dominates(slow_frugal)
        assert not slow_frugal.dominates(fast_hungry)

    def test_better_on_one_axis_equal_other(self):
        assert _p("a", 2.0, 1.0).dominates(_p("b", 1.0, 1.0))
        assert _p("a", 1.0, 0.5).dominates(_p("b", 1.0, 1.0))

    def test_invalid_point_rejected(self):
        with pytest.raises(ValueError):
            _p("a", 0.0, 1.0)
        with pytest.raises(ValueError):
            _p("a", 1.0, -1.0)


class TestEfficientSet:
    def test_dominated_point_removed(self):
        points = [_p("good", 2.0, 0.5), _p("bad", 1.0, 1.0)]
        assert [p.key for p in pareto_efficient(points)] == ["good"]

    def test_tradeoff_chain_all_kept(self):
        points = [_p("a", 1.0, 0.3), _p("b", 2.0, 0.5), _p("c", 3.0, 1.0)]
        assert len(pareto_efficient(points)) == 3

    def test_result_sorted_by_performance(self):
        points = [_p("c", 3.0, 1.0), _p("a", 1.0, 0.3), _p("b", 2.0, 0.5)]
        assert [p.key for p in pareto_efficient(points)] == ["a", "b", "c"]

    def test_interior_point_removed(self):
        points = [
            _p("a", 1.0, 0.3),
            _p("mid", 1.5, 0.9),  # dominated by c on perf, a on energy? no —
            _p("c", 3.0, 1.0),
        ]
        # 'mid' is NOT dominated: c is faster but hungrier; a is frugal but slower.
        assert len(pareto_efficient(points)) == 3

    def test_truly_dominated_interior(self):
        points = [_p("a", 1.0, 0.3), _p("bad", 0.9, 0.4), _p("c", 3.0, 1.0)]
        assert {p.key for p in pareto_efficient(points)} == {"a", "c"}

    def test_duplicates_survive(self):
        points = [_p("a", 1.0, 1.0), _p("b", 1.0, 1.0)]
        assert len(pareto_efficient(points)) == 2

    def test_duplicates_survive_in_key_order(self):
        """Exact duplicates tie on both axes, so the key breaks the tie —
        whichever order they arrive in."""
        forward = pareto_efficient([_p("a", 1.0, 1.0), _p("b", 1.0, 1.0)])
        backward = pareto_efficient([_p("b", 1.0, 1.0), _p("a", 1.0, 1.0)])
        assert [p.key for p in forward] == ["a", "b"]
        assert list(forward) == list(backward)

    def test_single_point(self):
        assert len(pareto_efficient([_p("only", 1.0, 1.0)])) == 1

    def test_empty_input(self):
        assert pareto_efficient([]) == ()

    def test_performance_tie_breaks_by_energy_then_key(self):
        """Equal-performance points on the frontier order by energy, and
        the order cannot depend on input order."""
        tied_cheap = _p("z", 2.0, 0.5)
        tied_dear = _p("a", 2.0, 0.5)
        anchor = _p("m", 3.0, 1.0)
        out = pareto_efficient([tied_cheap, anchor, tied_dear])
        assert [p.key for p in out] == ["a", "z", "m"]
        out_permuted = pareto_efficient([anchor, tied_dear, tied_cheap])
        assert list(out) == list(out_permuted)

    def test_axis_tie_with_domination(self):
        """A point tied on performance but strictly worse on energy is
        dominated and must drop out."""
        points = [_p("lean", 2.0, 0.5), _p("hungry", 2.0, 0.9)]
        assert [p.key for p in pareto_efficient(points)] == ["lean"]

    def test_same_object_listed_twice(self):
        point = _p("twin", 1.0, 1.0)
        out = pareto_efficient([point, point])
        assert len(out) == 2


class TestFrontierCurve:
    def test_fits_through_two_points_linearly(self):
        curve = fit_frontier([_p("a", 1.0, 1.0), _p("b", 2.0, 2.0)])
        assert curve.energy_at(1.5) == pytest.approx(1.5)

    def test_series_spans_range(self):
        curve = fit_frontier([_p("a", 1.0, 1.0), _p("b", 3.0, 2.0)])
        series = curve.series(5)
        assert series[0][0] == pytest.approx(1.0)
        assert series[-1][0] == pytest.approx(3.0)
        assert len(series) == 5

    def test_quadratic_fit_exact_on_parabola(self):
        points = [_p(str(x), float(x), float(x * x)) for x in (1, 2, 3, 4)]
        curve = fit_frontier(points, degree=2)
        assert curve.energy_at(2.5) == pytest.approx(6.25, rel=1e-6)

    def test_degree_clamped_to_points(self):
        curve = fit_frontier([_p("a", 1.0, 1.0), _p("b", 2.0, 3.0)], degree=5)
        assert len(curve.coefficients) == 2  # linear

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            fit_frontier([_p("a", 1.0, 1.0)])

    def test_series_needs_two_samples(self):
        curve = fit_frontier([_p("a", 1.0, 1.0), _p("b", 2.0, 2.0)])
        with pytest.raises(ValueError):
            curve.series(1)
