"""Unit tests for uncertainty propagation."""

import math

import pytest

from repro.core.statistics import ConfidenceInterval
from repro.core.uncertainty import (
    energy_interval,
    product_interval,
    quotient_interval,
    ratio_interval,
)


def _ci(mean, rel, n=5, confidence=0.95) -> ConfidenceInterval:
    return ConfidenceInterval(
        mean=mean, half_width=abs(mean) * rel, confidence=confidence, n=n
    )


class TestProduct:
    def test_mean_multiplies(self):
        ci = product_interval(_ci(10.0, 0.01), _ci(3.0, 0.02))
        assert ci.mean == pytest.approx(30.0)

    def test_relative_errors_add_in_quadrature(self):
        ci = product_interval(_ci(10.0, 0.03), _ci(3.0, 0.04))
        assert ci.relative_error == pytest.approx(0.05)

    def test_exact_factor_is_transparent(self):
        ci = product_interval(_ci(10.0, 0.02), _ci(3.0, 0.0))
        assert ci.relative_error == pytest.approx(0.02)

    def test_n_is_conservative(self):
        ci = product_interval(_ci(1.0, 0.01, n=3), _ci(1.0, 0.01, n=20))
        assert ci.n == 3

    def test_mixed_confidence_rejected(self):
        with pytest.raises(ValueError):
            product_interval(_ci(1.0, 0.01), _ci(1.0, 0.01, confidence=0.99))


class TestQuotient:
    def test_mean_divides(self):
        ci = quotient_interval(_ci(10.0, 0.01), _ci(4.0, 0.01))
        assert ci.mean == pytest.approx(2.5)

    def test_relative_error_quadrature(self):
        ci = quotient_interval(_ci(10.0, 0.03), _ci(4.0, 0.04))
        assert ci.relative_error == pytest.approx(0.05)

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            quotient_interval(_ci(1.0, 0.01), _ci(0.0, 0.01))


class TestOnRealResults:
    def test_energy_interval_wider_than_parts(self, full_study):
        from repro.hardware.catalog import ATOM_45
        from repro.hardware.config import stock
        from repro.workloads.catalog import benchmark

        result = full_study.measure(benchmark("db"), stock(ATOM_45))
        energy = energy_interval(result)
        assert energy.mean == pytest.approx(result.energy_joules, rel=1e-9)
        assert energy.relative_error >= result.time_ci.relative_error
        assert energy.relative_error >= result.power_ci.relative_error
        assert energy.relative_error <= math.hypot(
            result.time_ci.relative_error, result.power_ci.relative_error
        ) + 1e-12

    def test_ratio_interval_metric_selection(self, full_study):
        from repro.hardware.catalog import ATOM_45
        from repro.hardware.config import stock
        from repro.workloads.catalog import benchmark

        a = full_study.measure(benchmark("db"), stock(ATOM_45))
        b = full_study.measure(benchmark("jess"), stock(ATOM_45))
        ratio = ratio_interval(a, b, "seconds")
        assert ratio.mean == pytest.approx(a.seconds / b.seconds)
        with pytest.raises(KeyError):
            ratio_interval(a, b, "volts")
