"""Unit tests for reference normalisation (§2.6)."""

import pytest

from repro.workloads.catalog import benchmark


class TestReferenceTime:
    def test_matches_table1(self, references):
        db = benchmark("db")
        assert references.time_seconds(db) == db.reference_seconds

    def test_speedup_of_reference_time_is_one(self, references):
        db = benchmark("db")
        assert references.speedup(db, db.reference_seconds) == pytest.approx(1.0)

    def test_speedup_inverse_in_time(self, references):
        db = benchmark("db")
        assert references.speedup(db, db.reference_seconds / 2) == pytest.approx(2.0)

    def test_speedup_rejects_nonpositive_time(self, references):
        with pytest.raises(ValueError):
            references.speedup(benchmark("db"), 0.0)


class TestReferenceEnergy:
    def test_positive(self, references):
        assert references.energy_joules(benchmark("mcf")) > 0.0

    def test_cached(self, references):
        mcf = benchmark("mcf")
        assert references.energy_joules(mcf) == references.energy_joules(mcf)

    def test_reference_power_consistent(self, references):
        db = benchmark("db")
        power = references.power_watts(db)
        assert power * db.reference_seconds == pytest.approx(
            references.energy_joules(db)
        )

    def test_reference_power_plausible(self, references):
        # Mean of P4 (~45W), C2D65 (~26W), Atom (~2.4W), i5 (~26W): 15-35W.
        for name in ("db", "mcf", "sunflow"):
            power = references.power_watts(benchmark(name))
            assert 10.0 < power < 40.0

    def test_normalized_energy_of_reference_is_one(self, references):
        db = benchmark("db")
        ref = references.energy_joules(db)
        assert references.normalized_energy(db, ref) == pytest.approx(1.0)

    def test_normalized_energy_rejects_negative(self, references):
        with pytest.raises(ValueError):
            references.normalized_energy(benchmark("db"), -1.0)


class TestCalibrationConsistency:
    def test_mean_reference_machine_time_equals_table1(self, references):
        """The engine's work calibration must close the loop: the mean
        stock run time over the four reference machines is Table 1's
        reference time."""
        from repro.core.statistics import mean
        from repro.hardware.catalog import reference_processors
        from repro.hardware.config import stock

        engine = references.engine
        for name in ("db", "mcf", "fluidanimate", "xalan", "antlr"):
            bench = benchmark(name)
            times = [
                engine.ideal(bench, stock(spec)).seconds.value
                for spec in reference_processors()
            ]
            assert mean(times) == pytest.approx(bench.reference_seconds, rel=1e-6)
