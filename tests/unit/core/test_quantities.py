"""Unit tests for the unit-safe scalar quantities."""

import pytest

from repro.core.quantities import (
    Amperes,
    Hertz,
    Joules,
    Seconds,
    Volts,
    Watts,
    average_power,
    duration_of,
    electrical_power,
    energy,
)


class TestArithmetic:
    def test_same_type_addition(self):
        assert Seconds(2.0) + Seconds(3.0) == Seconds(5.0)

    def test_same_type_subtraction(self):
        assert Watts(5.0) - Watts(2.0) == Watts(3.0)

    def test_cross_type_addition_rejected(self):
        with pytest.raises(TypeError):
            Seconds(1.0) + Watts(1.0)

    def test_cross_type_subtraction_rejected(self):
        with pytest.raises(TypeError):
            Joules(1.0) - Seconds(1.0)

    def test_scaling_by_number(self):
        assert Watts(3.0) * 2 == Watts(6.0)
        assert 2 * Watts(3.0) == Watts(6.0)

    def test_multiplying_quantities_rejected(self):
        with pytest.raises(TypeError):
            Watts(3.0) * Seconds(2.0)

    def test_division_by_number(self):
        assert Joules(10.0) / 4 == Joules(2.5)

    def test_division_same_type_gives_float(self):
        ratio = Watts(10.0) / Watts(4.0)
        assert isinstance(ratio, float)
        assert ratio == 2.5

    def test_division_cross_type_rejected(self):
        with pytest.raises(TypeError):
            Watts(10.0) / Seconds(2.0)

    def test_ordering(self):
        assert Watts(1.0) < Watts(2.0)
        assert max(Seconds(3.0), Seconds(1.0)) == Seconds(3.0)

    def test_float_conversion(self):
        assert float(Hertz(5.0)) == 5.0

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Watts(float("nan"))

    def test_bool(self):
        assert Watts(1.0)
        assert not Watts(0.0)

    def test_require_positive(self):
        assert Seconds(1.0).require_positive() == Seconds(1.0)
        with pytest.raises(ValueError):
            Seconds(0.0).require_positive()
        with pytest.raises(ValueError):
            Seconds(-1.0).require_positive()


class TestConversions:
    def test_energy_is_power_times_time(self):
        assert energy(Watts(10.0), Seconds(3.0)) == Joules(30.0)

    def test_average_power(self):
        assert average_power(Joules(30.0), Seconds(3.0)) == Watts(10.0)

    def test_average_power_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            average_power(Joules(1.0), Seconds(0.0))

    def test_duration_of(self):
        assert duration_of(Joules(30.0), Watts(10.0)) == Seconds(3.0)

    def test_duration_of_rejects_zero_power(self):
        with pytest.raises(ValueError):
            duration_of(Joules(1.0), Watts(0.0))

    def test_electrical_power(self):
        assert electrical_power(Volts(12.0), Amperes(2.0)) == Watts(24.0)

    def test_energy_round_trip(self):
        joules = energy(Watts(7.0), Seconds(5.0))
        assert average_power(joules, Seconds(5.0)) == Watts(7.0)


class TestHertz:
    def test_from_ghz(self):
        assert Hertz.from_ghz(2.4) == Hertz(2.4e9)

    def test_ghz_property(self):
        assert Hertz(2.4e9).ghz == pytest.approx(2.4)

    def test_cycles_over(self):
        assert Hertz.from_ghz(1.0).cycles_over(Seconds(2.0)) == pytest.approx(2e9)
