"""Unit tests for frontier combination and dataset serialization.

Everything here is pure — no engine sweeps.  The end-to-end search (and
its byte-identity guarantee) lives in ``tests/integration/test_projection``.
"""

import json

import pytest

from repro.projection.frontier import (
    PROJECTION_BENCHMARK_NAMES,
    CandidateOutcome,
    MeasuredPoint,
    NodeFrontier,
    ProjectionDataset,
    _combine,
    projection_benchmarks,
)
from repro.projection.synthesize import Budget, _assemble
from repro.workloads.benchmark import Group
from repro.workloads.catalog import groups


def _candidate(big_cores=2, little_cores=4):
    candidate = _assemble(22, big_cores, 2.8, little_cores, 1.6, Budget())
    assert candidate is not None
    return candidate


def _outcome(candidate, performance, energy):
    return CandidateOutcome(candidate=candidate, performance=performance, energy=energy)


class TestScoringSet:
    def test_two_benchmarks_per_group(self):
        scoring = projection_benchmarks()
        assert tuple(b.name for b in scoring) == PROJECTION_BENCHMARK_NAMES
        per_group: dict[Group, int] = {}
        for benchmark in scoring:
            per_group[benchmark.group] = per_group.get(benchmark.group, 0) + 1
        assert set(per_group) == set(groups())
        assert all(count == 2 for count in per_group.values())


class TestCombine:
    def _by_config(self, candidate, big_groups, little_groups):
        big, little = candidate.big, candidate.little
        table = {}
        if big is not None:
            table[big.config.key] = big_groups
        if little is not None:
            table[little.config.key] = little_groups
        return table

    def test_scalable_groups_sum_throughput(self):
        candidate = _candidate()
        by_config = self._by_config(
            candidate,
            big_groups={Group.NATIVE_SCALABLE: (4.0, 1.0)},
            little_groups={Group.NATIVE_SCALABLE: (2.0, 0.4)},
        )
        outcome = _combine(candidate, by_config, groups())
        # s = 4 + 2; e = (1.0*4 + 0.4*2) / 6 = 0.8; one group present.
        assert outcome.performance == pytest.approx(6.0)
        assert outcome.energy == pytest.approx(0.8)

    def test_serial_groups_take_the_faster_cluster(self):
        candidate = _candidate()
        by_config = self._by_config(
            candidate,
            big_groups={Group.JAVA_NONSCALABLE: (3.0, 1.2)},
            little_groups={Group.JAVA_NONSCALABLE: (1.1, 0.3)},
        )
        outcome = _combine(candidate, by_config, groups())
        assert outcome.performance == pytest.approx(3.0)
        assert outcome.energy == pytest.approx(1.2)

    def test_homogeneous_candidate_passes_through(self):
        candidate = _assemble(22, 4, 2.8, 0, 1.6, Budget())
        by_config = {
            candidate.big.config.key: {
                Group.NATIVE_SCALABLE: (5.0, 0.9),
                Group.NATIVE_NONSCALABLE: (2.0, 1.1),
            }
        }
        outcome = _combine(candidate, by_config, groups())
        assert outcome.performance == pytest.approx((5.0 + 2.0) / 2)
        assert outcome.energy == pytest.approx((0.9 + 1.1) / 2)

    def test_point_carries_the_candidate_key(self):
        candidate = _candidate()
        point = _outcome(candidate, 2.0, 0.5).point
        assert point.key == candidate.key
        assert point.performance == 2.0


class TestNodeFrontier:
    def _frontier(self):
        slow = _outcome(_assemble(22, 0, 2.8, 8, 1.6, Budget()), 1.0, 0.2)
        fast = _outcome(_assemble(22, 4, 2.8, 0, 1.6, Budget()), 4.0, 1.0)
        dominated = _outcome(_assemble(22, 1, 2.8, 1, 1.6, Budget()), 0.5, 0.9)
        return NodeFrontier(
            node_nm=22,
            outcomes=(slow, fast, dominated),
            efficient_keys=(slow.candidate.key, fast.candidate.key),
        )

    def test_efficient_outcomes_filter(self):
        frontier = self._frontier()
        assert len(frontier.efficient_outcomes) == 2
        assert frontier.best_performance() == pytest.approx(4.0)
        assert frontier.best_efficiency() == pytest.approx(5.0)  # 1.0 / 0.2

    def test_frontier_series_spans_the_efficient_points(self):
        series = self._frontier().frontier_series(samples=9)
        assert len(series) == 9
        assert series[0][0] == pytest.approx(1.0)
        assert series[-1][0] == pytest.approx(4.0)

    def test_single_point_series_degenerates_to_the_point(self):
        lone = _outcome(_candidate(), 2.0, 0.5)
        frontier = NodeFrontier(
            node_nm=22, outcomes=(lone,), efficient_keys=(lone.candidate.key,)
        )
        assert frontier.frontier_series() == ((2.0, 0.5),)


class TestDataset:
    def _dataset(self):
        lone = _outcome(_candidate(), 2.0, 0.5)
        frontier = NodeFrontier(
            node_nm=22, outcomes=(lone,), efficient_keys=(lone.candidate.key,)
        )
        measured = MeasuredPoint(key="i7stock", node_nm=45, performance=1.0, energy=1.0)
        return ProjectionDataset(
            seed=0,
            samples=1,
            budget=Budget(),
            benchmark_names=PROJECTION_BENCHMARK_NAMES,
            measured=(measured,),
            frontiers=(frontier,),
        )

    def test_lookup_and_count(self):
        dataset = self._dataset()
        assert dataset.frontier_for(22).node_nm == 22
        assert dataset.candidate_count() == 1
        with pytest.raises(KeyError):
            dataset.frontier_for(14)

    def test_json_bytes_are_canonical(self):
        dataset = self._dataset()
        first = dataset.to_json_bytes()
        assert first == dataset.to_json_bytes()
        assert first.endswith(b"\n")
        first.decode("ascii")  # pure ASCII, no escapes needed
        payload = json.loads(first)
        assert payload["version"] == 1
        assert payload["budget"] == {"area_mm2": 260.0, "tdp_w": 130.0}
        assert payload["nodes"][0]["candidates"][0]["efficient"] is True
        # Canonical form: sorted keys, no whitespace after separators.
        assert b": " not in first and b", " not in first

    def test_candidate_rows_expose_the_mix(self):
        payload = json.loads(self._dataset().to_json_bytes())
        row = payload["nodes"][0]["candidates"][0]
        assert row["big_cores"] == 2
        assert row["little_cores"] == 4
        assert row["dark_fraction"] >= 0.0
