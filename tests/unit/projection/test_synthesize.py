"""Unit tests for the ProjectedProcessor synthesizer (ISSUE 10)."""

import pytest

from repro.hardware.technology import PROJECTED_NODES
from repro.projection.synthesize import (
    BIG_CLOCKS,
    LITTLE_CLOCKS,
    Budget,
    node_capacity,
    synthesize_candidates,
    synthesize_spec,
)

_NODES = (22, 14, 10, 7)


class TestBudget:
    def test_defaults_match_desktop_class(self):
        budget = Budget()
        assert budget.area_mm2 == pytest.approx(260.0)
        assert budget.tdp_w == pytest.approx(130.0)

    @pytest.mark.parametrize("kwargs", [
        {"area_mm2": 0.0},
        {"area_mm2": -1.0},
        {"tdp_w": 0.0},
        {"tdp_w": -5.0},
    ])
    def test_nonpositive_axes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Budget(**kwargs)


class TestSynthesizeSpec:
    def test_key_embeds_every_degree_of_freedom(self):
        spec = synthesize_spec("big", 22, 8, 3.2)
        assert spec.key == "proj22_big8c3.2g"
        assert spec.cores == 8
        assert spec.node is PROJECTED_NODES[22]
        assert spec.node.synthetic

    def test_keys_unique_across_the_grid(self):
        keys = {
            synthesize_spec(kind, nm, cores, clock).key
            for nm in _NODES
            for kind, grid in (("big", BIG_CLOCKS), ("little", LITTLE_CLOCKS))
            for clock in grid[nm]
            for cores in (1, 2, 5)
        }
        assert len(keys) == len(_NODES) * 2 * 3 * 3

    def test_vid_range_comes_from_the_node(self):
        spec = synthesize_spec("little", 7, 4, 1.6)
        floor, nominal = PROJECTED_NODES[7].vid_span
        assert spec.vid_range == (floor.value, nominal.value)

    def test_off_grid_clock_rejected(self):
        with pytest.raises(ValueError):
            synthesize_spec("big", 22, 4, 2.5)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            synthesize_spec("big", 22, 0, 2.4)

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            synthesize_spec("medium", 22, 4, 2.4)

    def test_measured_node_rejected(self):
        with pytest.raises(KeyError):
            synthesize_spec("big", 45, 4, 2.4)

    def test_idle_power_shrinks_with_node(self):
        """Capacitance x V^2 falls faster than leakage_scale rises, so
        per-core idle watts still decline each shrink — just slowly."""
        idle = [
            synthesize_spec("big", nm, 1, BIG_CLOCKS[nm][0]).power.core_idle_watts
            for nm in _NODES
        ]
        assert idle == sorted(idle, reverse=True)

    def test_sane_power_and_tdp(self):
        spec = synthesize_spec("big", 14, 8, 3.0)
        assert spec.power.core_active_watts > 0
        assert spec.power.core_idle_watts > 0
        assert spec.power.uncore_watts > 0
        assert spec.tdp_w >= spec.power.uncore_watts


class TestCandidates:
    def test_deterministic_for_same_inputs(self):
        first = synthesize_candidates(22, 32, seed=3)
        second = synthesize_candidates(22, 32, seed=3)
        assert first == second

    def test_seed_changes_the_draw(self):
        assert synthesize_candidates(22, 32, seed=0) != synthesize_candidates(
            22, 32, seed=1
        )

    def test_sorted_by_unique_key(self):
        candidates = synthesize_candidates(14, 48, seed=0)
        keys = [c.key for c in candidates]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))

    @pytest.mark.parametrize("nanometers", _NODES)
    def test_every_candidate_fits_the_budget(self, nanometers):
        budget = Budget()
        for candidate in synthesize_candidates(nanometers, 48, budget, seed=0):
            assert candidate.node_nm == nanometers
            assert candidate.area_mm2 <= budget.area_mm2 + 1e-9
            assert candidate.peak_watts <= budget.tdp_w + 1e-9
            assert 0.0 <= candidate.dark_fraction < 1.0
            assert candidate.clusters  # never an empty machine

    def test_both_shapes_represented(self):
        """The draw keeps homogeneous extremes alongside big.LITTLE mixes."""
        candidates = synthesize_candidates(10, 96, seed=0)
        assert any(c.heterogeneous for c in candidates)
        assert any(c.big is not None and c.little is None for c in candidates)
        assert any(c.big is None and c.little is not None for c in candidates)

    def test_cluster_configs_are_stock_shaped(self):
        for candidate in synthesize_candidates(7, 16, seed=0):
            for cluster in candidate.clusters:
                config = cluster.config
                assert config.active_cores == cluster.cores
                assert config.clock_ghz == cluster.clock_ghz
                assert config.spec.key.startswith(f"proj{candidate.node_nm}_")

    def test_tight_budget_yields_small_machines(self):
        tight = Budget(area_mm2=40.0, tdp_w=25.0)
        candidates = synthesize_candidates(22, 32, tight, seed=0)
        assert candidates  # something always fits
        for candidate in candidates:
            assert candidate.area_mm2 <= 40.0 + 1e-9
            assert candidate.peak_watts <= 25.0 + 1e-9

    def test_nonpositive_samples_rejected(self):
        with pytest.raises(ValueError):
            synthesize_candidates(22, 0)

    def test_measured_node_rejected(self):
        with pytest.raises(KeyError):
            synthesize_candidates(32, 8)


class TestNodeCapacity:
    def test_dark_fraction_grows_with_shrink(self):
        fractions = [node_capacity(nm)["dark_fraction"] for nm in _NODES]
        assert fractions == sorted(fractions)
        assert fractions[0] > 0.2

    def test_power_limits_before_area(self):
        """Post-Dennard signature: the budget can place far more big cores
        than it can power at every projected node."""
        for nm in _NODES:
            capacity = node_capacity(nm)
            assert capacity["big_cores_by_power"] < capacity["big_cores_by_area"]
            assert capacity["big_cores"] >= 1.0

    def test_relaxed_power_budget_lights_the_die(self):
        lavish = node_capacity(22, Budget(area_mm2=260.0, tdp_w=5000.0))
        assert lavish["dark_fraction"] == pytest.approx(0.0, abs=0.05)
