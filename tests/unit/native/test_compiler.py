"""Unit tests for the native toolchain models (§2.1)."""

import pytest

from repro.native.binary import NATIVE_VARIABILITY, binary_for
from repro.native.compiler import Toolchain, effective_ilp, quality_of
from repro.workloads.catalog import benchmark


class TestToolchainChoice:
    def test_spec_uses_icc(self):
        """§2.1: 'We chose Intel's icc compiler' for SPEC CPU2006."""
        assert binary_for(benchmark("mcf")).toolchain is Toolchain.ICC
        assert binary_for(benchmark("gamess")).toolchain is Toolchain.ICC

    def test_parsec_uses_gcc(self):
        """§2.1: icc miscompiled PARSEC; the paper uses gcc 4.4.1 -O3."""
        assert binary_for(benchmark("fluidanimate")).toolchain is Toolchain.GCC

    def test_java_has_no_binary(self):
        with pytest.raises(ValueError):
            binary_for(benchmark("db"))

    def test_native_variability_small(self):
        assert binary_for(benchmark("mcf")).variability == NATIVE_VARIABILITY < 0.01


class TestCodeQuality:
    def test_icc_beats_gcc_on_scalar_code(self):
        assert effective_ilp(Toolchain.ICC, 2.0) > effective_ilp(Toolchain.GCC, 2.0)

    def test_jit_gets_microarch_bonus(self):
        assert quality_of(Toolchain.JIT).microarch_specific
        assert not quality_of(Toolchain.ICC).microarch_specific

    def test_effective_ilp_floors_at_one(self):
        assert effective_ilp(Toolchain.GCC, 1.0) >= 1.0

    def test_bad_ilp_rejected(self):
        with pytest.raises(ValueError):
            effective_ilp(Toolchain.ICC, 0.5)
