"""Unit tests for the §2.8 OS-scaling anomaly model."""

import pytest

from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import stock
from repro.hardware.os_scaling import OsContextScaling, anomaly_demonstration
from repro.workloads.catalog import benchmark


class TestBuggyKernel:
    def test_power_inversion_reproduced(self, engine):
        """§2.8: 'power consumption to increase as hardware resources
        were decreased!'"""
        scaler = OsContextScaling(engine=engine, buggy=True)
        config = stock(CORE_I7_45)
        mcf = benchmark("mcf")
        _, four = scaler.run_with_offlined_cores(mcf, config, 4)
        _, one = scaler.run_with_offlined_cores(mcf, config, 1)
        assert one.value > four.value  # fewer resources, more power

    def test_fixed_kernel_behaves(self, engine):
        scaler = OsContextScaling(engine=engine, buggy=False)
        config = stock(CORE_I7_45)
        mcf = benchmark("mcf")
        _, four = scaler.run_with_offlined_cores(mcf, config, 4)
        _, one = scaler.run_with_offlined_cores(mcf, config, 1)
        assert one.value < four.value

    def test_bios_configuration_unaffected(self, engine):
        """The paper's workaround: BIOS-disabled cores actually release
        their power."""
        config = stock(CORE_I7_45).without_turbo()
        mcf = benchmark("mcf")
        four = engine.ideal(mcf, config).average_power.value
        one = engine.ideal(mcf, config.with_cores(1)).average_power.value
        assert one < four

    def test_timing_unaffected_by_bug(self, engine):
        scaler = OsContextScaling(engine=engine, buggy=True)
        config = stock(CORE_I7_45)
        mcf = benchmark("mcf")
        execution, _ = scaler.run_with_offlined_cores(mcf, config, 2)
        reference = engine.ideal(mcf, config.with_cores(2).without_turbo())
        assert execution.seconds.value == pytest.approx(reference.seconds.value)

    def test_demonstration_shape(self, engine):
        readings = anomaly_demonstration(
            engine, benchmark("mcf"), stock(CORE_I7_45)
        )
        assert len(readings) == 4
        assert readings["1 cores online"] > readings["4 cores online"]

    def test_online_count_validated(self, engine):
        scaler = OsContextScaling(engine=engine)
        with pytest.raises(ValueError):
            scaler.run_with_offlined_cores(
                benchmark("mcf"), stock(CORE_I7_45), 0
            )
