"""Unit tests for the LLC model."""

import pytest

from repro.hardware.caches import (
    REFERENCE_LLC_MB,
    capacity_miss_factor,
    resolve_mpki,
    sharing_pressure,
)
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock


class TestCapacityFactor:
    def test_reference_size_is_unity(self):
        assert capacity_miss_factor(24.0, REFERENCE_LLC_MB) == pytest.approx(1.0)

    def test_smaller_cache_more_misses(self):
        assert capacity_miss_factor(24.0, 0.5) > 1.0

    def test_larger_cache_fewer_misses(self):
        assert capacity_miss_factor(24.0, 8.0) < 1.0

    def test_monotone_in_cache_size(self):
        factors = [capacity_miss_factor(24.0, mb) for mb in (0.5, 1, 3, 4, 8)]
        assert factors == sorted(factors, reverse=True)

    def test_factor_tends_to_one_for_huge_footprints(self):
        """When nothing fits anywhere, cache size stops mattering: the
        factor relative to the reference cache decays toward 1."""
        factors = [capacity_miss_factor(fp, 1.0) for fp in (1, 4, 16, 64)]
        assert factors == sorted(factors, reverse=True)
        assert all(f > 1.0 for f in factors)  # 1 MB < 4 MB reference

    def test_absolute_miss_fraction_monotone_in_footprint(self):
        fractions = [fp / (fp + 1.0) for fp in (1, 4, 16, 64)]
        assert fractions == sorted(fractions)

    def test_zero_footprint_neutral(self):
        assert capacity_miss_factor(0.0, 0.5) == 1.0

    def test_tiny_cache_factor_bounded(self):
        """Compulsory misses dominate: the factor tends to a finite limit."""
        assert capacity_miss_factor(24.0, 0.01) < 1.0 / (24.0 / (24.0 + 4.0))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            capacity_miss_factor(-1.0, 1.0)
        with pytest.raises(ValueError):
            capacity_miss_factor(1.0, 0.0)


class TestSharing:
    def test_single_context_no_pressure(self):
        assert sharing_pressure(1) == 1.0

    def test_sublinear_growth(self):
        assert sharing_pressure(4) == pytest.approx(2.0)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            sharing_pressure(0)


class TestResolve:
    def test_small_cache_machine_suffers_more(self):
        atom = resolve_mpki(5.0, 24.0, stock(ATOM_45))
        i7 = resolve_mpki(5.0, 24.0, stock(CORE_I7_45))
        assert atom.mpki > i7.mpki

    def test_sharing_raises_mpki(self):
        config = stock(CORE_I7_45)
        alone = resolve_mpki(5.0, 24.0, config, sharing_contexts=1)
        crowded = resolve_mpki(5.0, 24.0, config, sharing_contexts=8)
        assert crowded.mpki > alone.mpki
        assert crowded.effective_llc_mb < alone.effective_llc_mb

    def test_negative_mpki_rejected(self):
        with pytest.raises(ValueError):
            resolve_mpki(-1.0, 24.0, stock(CORE_I7_45))
