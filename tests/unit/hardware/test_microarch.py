"""Unit tests for the microarchitecture family definitions."""

import pytest

from repro.hardware.microarch import (
    BONNELL,
    CORE,
    FAMILIES,
    Microarchitecture,
    NEHALEM,
    NETBURST,
    family_for,
)


class TestDefinitions:
    def test_four_families(self):
        assert set(FAMILIES) == {"NetBurst", "Core", "Bonnell", "Nehalem"}

    def test_lookup(self):
        assert family_for("Nehalem") is NEHALEM
        with pytest.raises(KeyError):
            family_for("Skylake")

    def test_bonnell_is_the_only_in_order(self):
        assert not BONNELL.out_of_order
        assert NETBURST.out_of_order and CORE.out_of_order and NEHALEM.out_of_order

    def test_netburst_pipeline_deepest(self):
        assert NETBURST.pipeline_depth > max(
            CORE.pipeline_depth, BONNELL.pipeline_depth, NEHALEM.pipeline_depth
        )

    def test_branch_penalty_tracks_pipeline(self):
        assert NETBURST.branch_penalty_cycles() == NETBURST.pipeline_depth

    def test_netburst_most_power_hungry_per_instruction(self):
        assert NETBURST.epi_factor > max(
            CORE.epi_factor, BONNELL.epi_factor, NEHALEM.epi_factor
        )

    def test_bonnell_most_frugal_per_instruction(self):
        assert BONNELL.epi_factor < min(
            CORE.epi_factor, NETBURST.epi_factor, NEHALEM.epi_factor
        )

    def test_core_family_has_no_smt(self):
        assert CORE.smt_overlap == 0.0

    def test_smt_maturity_ordering(self):
        """Bonnell and Nehalem recover more slots than the pioneering
        NetBurst implementation (§3.2)."""
        assert BONNELL.smt_overlap > NETBURST.smt_overlap
        assert NEHALEM.smt_overlap > NETBURST.smt_overlap

    def test_only_netburst_penalises_jit_code(self):
        assert NETBURST.jit_code_penalty > 0.0
        assert CORE.jit_code_penalty == 0.0
        assert NEHALEM.jit_code_penalty == 0.0
        assert BONNELL.jit_code_penalty == 0.0

    def test_front_end_width_ordering(self):
        width = lambda f: f.issue_width * f.issue_efficiency
        assert width(NEHALEM) > width(CORE) > width(NETBURST) > width(BONNELL)


class TestValidation:
    def _kwargs(self, **overrides):
        base = dict(
            name="X",
            issue_width=2,
            out_of_order=True,
            pipeline_depth=10,
            issue_efficiency=0.5,
            miss_overlap=0.5,
            smt_overlap=0.5,
            smt_contention=0.1,
            epi_factor=1.0,
        )
        base.update(overrides)
        return base

    def test_valid(self):
        Microarchitecture(**self._kwargs())

    def test_zero_issue_width_rejected(self):
        with pytest.raises(ValueError):
            Microarchitecture(**self._kwargs(issue_width=0))

    def test_issue_efficiency_bounds(self):
        with pytest.raises(ValueError):
            Microarchitecture(**self._kwargs(issue_efficiency=0.0))
        with pytest.raises(ValueError):
            Microarchitecture(**self._kwargs(issue_efficiency=1.5))

    def test_fraction_bounds(self):
        for field in ("miss_overlap", "smt_overlap", "smt_contention"):
            with pytest.raises(ValueError):
                Microarchitecture(**self._kwargs(**{field: 1.5}))
            with pytest.raises(ValueError):
                Microarchitecture(**self._kwargs(**{field: -0.1}))
