"""Unit tests for hardware event counters."""

import pytest

from repro.hardware.events import EventCounts


def _events(**overrides) -> EventCounts:
    base = dict(
        cycles=2e9,
        instructions=1e9,
        llc_misses=5e6,
        dtlb_misses=4e6,
        branch_misses=3e6,
    )
    base.update(overrides)
    return EventCounts(**base)


class TestRates:
    def test_ipc(self):
        assert _events().ipc == pytest.approx(0.5)

    def test_cpi(self):
        assert _events().cpi == pytest.approx(2.0)

    def test_cpi_ipc_reciprocal(self):
        e = _events()
        assert e.cpi * e.ipc == pytest.approx(1.0)

    def test_mpki(self):
        assert _events().llc_mpki == pytest.approx(5.0)
        assert _events().dtlb_mpki == pytest.approx(4.0)

    def test_zero_cycles_safe(self):
        assert _events(cycles=0).ipc == 0.0

    def test_zero_instructions_safe(self):
        e = _events(instructions=0)
        assert e.cpi == 0.0
        assert e.llc_mpki == 0.0


class TestScaling:
    def test_scaled_preserves_rates(self):
        e = _events()
        doubled = e.scaled(2.0)
        assert doubled.instructions == 2e9
        assert doubled.cpi == pytest.approx(e.cpi)
        assert doubled.llc_mpki == pytest.approx(e.llc_mpki)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            _events().scaled(-1.0)


class TestValidation:
    def test_negative_counter_rejected(self):
        with pytest.raises(ValueError):
            _events(cycles=-1)
        with pytest.raises(ValueError):
            _events(dtlb_misses=-1)
