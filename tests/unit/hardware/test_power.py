"""Unit tests for the per-structure power model."""

import pytest

from repro.hardware.catalog import ATOM_45, CORE2DUO_45, CORE_I5_32, CORE_I7_45
from repro.hardware.config import Configuration, stock
from repro.hardware.power import (
    frequency_scale,
    package_power,
    voltage_scale,
)
from repro.hardware.turbo import resolve as resolve_turbo


def _power(config, busy=1.0, util=0.5, activity=1.0, turbo_busy=0):
    turbo = resolve_turbo(config, turbo_busy)
    return package_power(config, busy, util, activity, turbo)


class TestScales:
    def test_stock_scales_are_unity(self):
        config = Configuration(CORE_I7_45, 4, 2, 2.66)
        assert voltage_scale(config) == pytest.approx(1.0)
        assert frequency_scale(config) == pytest.approx(1.0)

    def test_downclocked_scales_below_unity(self):
        config = Configuration(CORE_I7_45, 4, 2, 1.6)
        assert voltage_scale(config) < 1.0
        assert frequency_scale(config) == pytest.approx(1.6 / 2.66)

    def test_fixed_clock_part_always_unity(self):
        config = stock(ATOM_45)
        assert voltage_scale(config) == 1.0
        assert frequency_scale(config) == 1.0

    def test_i5_voltage_swing_is_shallow(self):
        """Architecture Finding 3's mechanism: the i5's effective voltage
        barely moves across its clock range."""
        i5_low = voltage_scale(Configuration(CORE_I5_32, 2, 2, 1.2))
        i7_low = voltage_scale(Configuration(CORE_I7_45, 4, 2, 1.6))
        assert i5_low > i7_low


class TestPackagePower:
    def test_components_positive(self):
        breakdown = _power(stock(CORE_I7_45).without_turbo())
        assert breakdown.uncore.value > 0
        assert breakdown.core_idle.value > 0
        assert breakdown.core_active.value > 0

    def test_total_sums_components(self):
        b = _power(stock(CORE_I7_45).without_turbo())
        assert b.total.value == pytest.approx(
            b.uncore.value + b.core_idle.value + b.core_active.value
        )

    def test_more_busy_cores_more_power(self):
        config = stock(CORE_I7_45).without_turbo()
        assert _power(config, busy=4.0).total > _power(config, busy=1.0).total

    def test_enabled_cores_cost_idle_power(self):
        four = _power(Configuration(CORE_I7_45, 4, 1, 2.66), busy=1.0)
        one = _power(Configuration(CORE_I7_45, 1, 1, 2.66), busy=1.0)
        assert four.core_idle.value > one.core_idle.value
        assert four.total.value > one.total.value

    def test_utilisation_raises_power(self):
        config = stock(CORE_I7_45).without_turbo()
        assert _power(config, util=0.9).total > _power(config, util=0.1).total

    def test_stalled_core_still_draws(self):
        """A fully stalled busy core keeps its clock toggling."""
        breakdown = _power(stock(CORE_I7_45).without_turbo(), util=0.0)
        assert breakdown.core_active.value > 0

    def test_activity_scales_active_power(self):
        config = stock(CORE_I7_45).without_turbo()
        hungry = _power(config, activity=1.3).core_active.value
        frugal = _power(config, activity=0.7).core_active.value
        assert hungry / frugal == pytest.approx(1.3 / 0.7)

    def test_downclock_cuts_power(self):
        low = _power(Configuration(CORE_I7_45, 4, 2, 1.6), busy=4.0)
        high = _power(Configuration(CORE_I7_45, 4, 2, 2.66), busy=4.0)
        assert low.total.value < 0.6 * high.total.value

    def test_turbo_multiplies_package(self):
        config = stock(CORE_I7_45)
        boosted = _power(config, turbo_busy=1)
        base = _power(config.without_turbo())
        assert boosted.total.value == pytest.approx(
            base.total.value * 1.21**2, rel=1e-6
        )

    def test_busy_cores_validated(self):
        config = stock(CORE_I7_45).without_turbo()
        with pytest.raises(ValueError):
            _power(config, busy=5.0)
        with pytest.raises(ValueError):
            _power(config, busy=-0.1)

    def test_utilisation_validated(self):
        with pytest.raises(ValueError):
            _power(stock(CORE_I7_45).without_turbo(), util=1.5)

    def test_activity_validated(self):
        with pytest.raises(ValueError):
            _power(stock(CORE_I7_45).without_turbo(), activity=0.0)

    def test_atom_orders_of_magnitude_below_i7(self):
        atom = _power(stock(ATOM_45), busy=1.0)
        i7 = _power(stock(CORE_I7_45).without_turbo(), busy=4.0)
        assert i7.total.value > 10 * atom.total.value

    def test_uncore_partially_tracks_clock(self):
        low = _power(Configuration(CORE2DUO_45, 2, 1, 1.6))
        high = _power(Configuration(CORE2DUO_45, 2, 1, 3.06))
        assert low.uncore.value < high.uncore.value
        assert low.uncore.value > 0.3 * high.uncore.value  # flat floor remains
