"""Unit tests for the memory-path model."""

import pytest

from repro.core.quantities import Hertz
from repro.hardware.catalog import CORE2QUAD_65, CORE_I7_45
from repro.hardware.memory import (
    LINE_BYTES,
    bandwidth_pressure,
    miss_latency_cycles,
)


class TestMissLatency:
    def test_cycle_cost_grows_with_clock(self):
        """The fixed-wall-time miss costs more cycles at higher clock —
        why clock scaling is sub-linear (§3.3)."""
        memory = CORE_I7_45.memory
        slow = miss_latency_cycles(memory, Hertz.from_ghz(1.6))
        fast = miss_latency_cycles(memory, Hertz.from_ghz(2.66))
        assert fast / slow == pytest.approx(2.66 / 1.6)

    def test_known_value(self):
        memory = CORE_I7_45.memory
        assert miss_latency_cycles(memory, Hertz.from_ghz(2.0)) == pytest.approx(
            memory.latency_ns * 2.0
        )


class TestBandwidthPressure:
    def test_idle_stream_no_inflation(self):
        outcome = bandwidth_pressure(CORE_I7_45.memory, 0.0)
        assert outcome.latency_inflation == 1.0
        assert outcome.demand_gbs == 0.0

    def test_light_load_no_inflation(self):
        misses = 0.2 * CORE_I7_45.memory.bandwidth_gbs * 1e9 / LINE_BYTES
        assert bandwidth_pressure(CORE_I7_45.memory, misses).latency_inflation == 1.0

    def test_heavy_load_inflates(self):
        misses = 0.9 * CORE2QUAD_65.memory.bandwidth_gbs * 1e9 / LINE_BYTES
        outcome = bandwidth_pressure(CORE2QUAD_65.memory, misses)
        assert outcome.latency_inflation > 1.3

    def test_inflation_monotone_in_demand(self):
        memory = CORE2QUAD_65.memory
        demands = [0.4, 0.6, 0.8, 1.0]
        inflations = [
            bandwidth_pressure(
                memory, d * memory.bandwidth_gbs * 1e9 / LINE_BYTES
            ).latency_inflation
            for d in demands
        ]
        assert inflations == sorted(inflations)

    def test_utilisation_clamped(self):
        memory = CORE2QUAD_65.memory
        outcome = bandwidth_pressure(memory, 1e12)
        assert outcome.utilisation <= 0.95
        assert outcome.latency_inflation < 100.0  # no singularity

    def test_same_demand_hurts_narrow_bus_more(self):
        misses = 0.5 * CORE2QUAD_65.memory.bandwidth_gbs * 1e9 / LINE_BYTES * 1.6
        fsb = bandwidth_pressure(CORE2QUAD_65.memory, misses)
        ddr3 = bandwidth_pressure(CORE_I7_45.memory, misses)
        assert fsb.latency_inflation > ddr3.latency_inflation

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            bandwidth_pressure(CORE_I7_45.memory, -1.0)
