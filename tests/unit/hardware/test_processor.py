"""Unit tests for ProcessorSpec structure and validation."""

import pytest

from repro.core.quantities import Hertz
from repro.hardware.catalog import CORE_I5_32, CORE_I7_45, PENTIUM4_130
from repro.hardware.microarch import CORE
from repro.hardware.processor import (
    MemorySystem,
    PowerCharacter,
    ProcessorSpec,
)
from repro.hardware.technology import node_for


def _spec(**overrides) -> ProcessorSpec:
    base = dict(
        key="test",
        label="Test (45)",
        model="Test 1",
        family=CORE,
        codename="Testfield",
        sspec="SLTEST",
        release="Jan '09",
        price_usd=100,
        cores=2,
        threads_per_core=1,
        llc_mb=4.0,
        stock_clock=Hertz.from_ghz(2.4),
        node=node_for(45),
        transistors_m=100,
        die_mm2=100,
        vid_range=(0.8, 1.2),
        tdp_w=65,
        memory=MemorySystem(latency_ns=80.0, bandwidth_gbs=5.0, dram="DDR2"),
        power=PowerCharacter(10.0, 2.0, 5.0),
    )
    base.update(overrides)
    return ProcessorSpec(**base)


class TestValidation:
    def test_valid(self):
        _spec()

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            _spec(cores=0)

    def test_clock_points_default_to_stock(self):
        assert _spec().clock_points_ghz == (2.4,)

    def test_clock_points_must_increase(self):
        with pytest.raises(ValueError):
            _spec(clock_points_ghz=(2.4, 1.6))

    def test_clock_points_must_end_at_stock(self):
        with pytest.raises(ValueError):
            _spec(clock_points_ghz=(1.6, 2.0))

    def test_memory_validation(self):
        with pytest.raises(ValueError):
            MemorySystem(latency_ns=0.0, bandwidth_gbs=5.0, dram="x")

    def test_power_character_validation(self):
        with pytest.raises(ValueError):
            PowerCharacter(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            PowerCharacter(1.0, 1.0, 1.0, turbo_power_per_step=0.9)
        with pytest.raises(ValueError):
            PowerCharacter(1.0, 1.0, 1.0, voltage_swing=1.5)
        with pytest.raises(ValueError):
            PowerCharacter(1.0, 1.0, 1.0, uncore_dynamic_fraction=-0.1)


class TestVoltage:
    def test_vid_endpoints(self):
        i7 = CORE_I7_45
        assert i7.voltage_at(i7.min_clock).value == pytest.approx(0.80)
        assert i7.voltage_at(i7.stock_clock).value == pytest.approx(1.38)

    def test_no_vid_part_is_flat(self):
        p4 = PENTIUM4_130
        assert p4.voltage_at(p4.stock_clock).value == pytest.approx(
            p4.node.nominal_voltage.value
        )

    def test_voltage_monotone_over_points(self):
        i5 = CORE_I5_32
        volts = [
            i5.voltage_at(Hertz.from_ghz(g)).value for g in i5.clock_points_ghz
        ]
        assert volts == sorted(volts)
