"""Unit tests for BIOS-style configurations (§2.8)."""

import pytest

from repro.hardware.catalog import ATOM_45, CORE2DUO_65, CORE_I5_32, CORE_I7_45
from repro.hardware.config import (
    Configuration,
    UnsupportedConfigurationError,
    stock,
)


class TestValidation:
    def test_stock_is_valid(self):
        for spec in (CORE_I7_45, ATOM_45, CORE2DUO_65):
            assert stock(spec).is_stock

    def test_too_many_cores_rejected(self):
        with pytest.raises(UnsupportedConfigurationError):
            Configuration(CORE2DUO_65, 3, 1, 2.4)

    def test_zero_cores_rejected(self):
        with pytest.raises(UnsupportedConfigurationError):
            Configuration(CORE2DUO_65, 0, 1, 2.4)

    def test_smt_on_non_smt_part_rejected(self):
        with pytest.raises(UnsupportedConfigurationError):
            Configuration(CORE2DUO_65, 2, 2, 2.4)

    def test_unsupported_clock_rejected(self):
        with pytest.raises(UnsupportedConfigurationError):
            Configuration(CORE_I7_45, 4, 2, 3.2)

    def test_turbo_requires_capability(self):
        with pytest.raises(UnsupportedConfigurationError):
            Configuration(ATOM_45, 1, 2, 1.66, turbo_enabled=True)

    def test_turbo_requires_stock_clock(self):
        """§3.6: Turbo Boost only engages at the default highest clock."""
        with pytest.raises(UnsupportedConfigurationError):
            Configuration(CORE_I7_45, 4, 2, 1.6, turbo_enabled=True)

    def test_turbo_at_stock_clock_allowed(self):
        Configuration(CORE_I7_45, 4, 2, 2.66, turbo_enabled=True)


class TestIdentity:
    def test_key_format(self):
        config = Configuration(CORE_I7_45, 4, 2, 2.66, turbo_enabled=True)
        assert config.key == "i7_45/4C2T@2.66+TB"

    def test_key_marks_disabled_turbo(self):
        config = Configuration(CORE_I7_45, 4, 2, 2.66)
        assert config.key.endswith("-TB")

    def test_non_turbo_parts_have_plain_keys(self):
        assert stock(ATOM_45).key == "atom_45/1C2T@1.66"

    def test_label_mentions_no_tb(self):
        assert "No TB" in Configuration(CORE_I7_45, 1, 1, 2.66).label

    def test_keys_unique_across_space(self):
        from repro.hardware.configurations import all_configurations

        keys = [c.key for c in all_configurations()]
        assert len(keys) == len(set(keys))


class TestDerived:
    def test_hardware_contexts(self):
        assert Configuration(CORE_I7_45, 2, 2, 2.66).hardware_contexts == 4

    def test_smt_enabled(self):
        assert Configuration(CORE_I7_45, 1, 2, 2.66).smt_enabled
        assert not Configuration(CORE_I7_45, 1, 1, 2.66).smt_enabled

    def test_is_stock_detects_departures(self):
        assert not Configuration(CORE_I7_45, 4, 2, 2.66).is_stock  # TB off
        assert not Configuration(CORE_I7_45, 2, 2, 2.66, True).is_stock
        assert Configuration(CORE_I7_45, 4, 2, 2.66, True).is_stock

    def test_voltage_at_stock_is_vid_max(self):
        config = stock(CORE_I5_32)
        assert config.voltage().value == pytest.approx(1.40)


class TestDerivationHelpers:
    def test_with_cores(self):
        assert stock(CORE_I7_45).with_cores(2).active_cores == 2

    def test_without_smt(self):
        assert stock(CORE_I7_45).without_smt().threads_per_core == 1

    def test_with_smt_restores_native_width(self):
        assert stock(CORE_I7_45).without_smt().with_smt().threads_per_core == 2

    def test_at_clock_drops_turbo_below_stock(self):
        derived = stock(CORE_I7_45).at_clock(1.6)
        assert derived.clock_ghz == 1.6
        assert not derived.turbo_enabled

    def test_at_clock_keeps_turbo_at_stock(self):
        derived = stock(CORE_I7_45).at_clock(2.66)
        assert derived.turbo_enabled

    def test_without_turbo(self):
        assert not stock(CORE_I7_45).without_turbo().turbo_enabled
