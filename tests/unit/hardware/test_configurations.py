"""Unit tests for the 45-point configuration space (§2.8)."""

from repro.hardware.catalog import CORE_I7_45, processor
from repro.hardware.configurations import (
    all_configurations,
    configurations_for,
    node_45nm_configurations,
    stock_configurations,
)


class TestSpaceShape:
    def test_exactly_45_configurations(self):
        """§2.8: 'We evaluate the eight stock processors and configure
        them for a total of 45 processor configurations.'"""
        assert len(all_configurations()) == 45

    def test_exactly_29_at_45nm(self):
        """§4.2: 'We expand the number of processors from four to
        twenty-nine.'"""
        assert len(node_45nm_configurations()) == 29

    def test_eight_stock(self):
        assert len(stock_configurations()) == 8

    def test_every_stock_configuration_in_space(self):
        keys = {c.key for c in all_configurations()}
        for config in stock_configurations():
            assert config.key in keys

    def test_all_keys_unique(self):
        keys = [c.key for c in all_configurations()]
        assert len(keys) == len(set(keys))

    def test_every_processor_represented(self):
        keys = {c.spec.key for c in all_configurations()}
        assert len(keys) == 8


class TestTable5Members:
    """Every configuration the paper's Table 5 lists must exist."""

    def test_table5_configurations_exist(self):
        from repro.experiments import paper_data

        keys = {c.key for c in node_45nm_configurations()}
        for grouping, members in paper_data.TABLE5_PARETO.items():
            for member in members:
                assert member in keys, f"{member} missing ({grouping})"

    def test_atomd_has_all_four_configurations(self):
        """§4.2 mentions 'all four AtomD (45) configurations'."""
        atomd = configurations_for(processor("atomd_45"))
        assert len(atomd) == 4
        shapes = {(c.active_cores, c.threads_per_core) for c in atomd}
        assert shapes == {(1, 1), (1, 2), (2, 1), (2, 2)}


class TestPerProcessor:
    def test_configurations_for_filters(self):
        i7_configs = configurations_for(CORE_I7_45)
        assert all(c.spec.key == "i7_45" for c in i7_configs)
        assert len(i7_configs) == 19

    def test_i7_has_turbo_contrasts(self):
        i7_configs = configurations_for(CORE_I7_45)
        enabled = {c.key for c in i7_configs if c.turbo_enabled}
        disabled = {c.key for c in i7_configs if not c.turbo_enabled}
        assert enabled and disabled

    def test_feature_experiment_configs_present(self):
        """The §3 controlled experiments' settings exist in the space."""
        keys = {c.key for c in all_configurations()}
        for needed in (
            "i7_45/2C1T@2.66-TB",
            "i7_45/1C1T@2.66-TB",
            "i5_32/1C2T@3.46-TB",
            "pentium4_130/1C1T@2.4",
            "atom_45/1C1T@1.66",
            "c2d_45/2C1T@1.6",
            "c2d_65/1C1T@2.4",
        ):
            assert needed in keys, needed
