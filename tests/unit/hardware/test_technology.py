"""Unit tests for process-node physics."""

import pytest

from repro.core.quantities import Hertz, Volts
from repro.hardware.technology import (
    NODES,
    VoltageCurve,
    node_for,
)


class TestNodes:
    def test_all_four_generations_present(self):
        assert sorted(NODES) == [32, 45, 65, 130]

    def test_lookup(self):
        assert node_for(45).nanometers == 45

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            node_for(90)

    def test_capacitance_shrinks_with_node(self):
        scales = [NODES[nm].capacitance_scale for nm in (130, 65, 45, 32)]
        assert scales == sorted(scales, reverse=True)

    def test_leakage_share_grows_with_shrink(self):
        """Post-Dennard: leakage per transistor relative to dynamic energy
        grows at each shrink."""
        ratio = [
            NODES[nm].leakage_scale / NODES[nm].capacitance_scale
            for nm in (130, 65, 45, 32)
        ]
        assert ratio == sorted(ratio)

    def test_voltage_drops_with_node(self):
        volts = [NODES[nm].nominal_voltage.value for nm in (130, 65, 45, 32)]
        assert volts == sorted(volts, reverse=True)


class TestVoltageCurve:
    def _curve(self) -> VoltageCurve:
        return VoltageCurve(
            v_min=Volts(0.8),
            v_max=Volts(1.4),
            f_min=Hertz.from_ghz(1.6),
            f_max=Hertz.from_ghz(2.66),
        )

    def test_endpoints(self):
        curve = self._curve()
        assert curve.voltage_at(Hertz.from_ghz(1.6)).value == pytest.approx(0.8)
        assert curve.voltage_at(Hertz.from_ghz(2.66)).value == pytest.approx(1.4)

    def test_monotone(self):
        curve = self._curve()
        low = curve.voltage_at(Hertz.from_ghz(1.8)).value
        high = curve.voltage_at(Hertz.from_ghz(2.4)).value
        assert low < high

    def test_clamps_below_floor(self):
        curve = self._curve()
        assert curve.voltage_at(Hertz.from_ghz(1.0)).value == pytest.approx(0.8)

    def test_extrapolates_above_ceiling(self):
        """Turbo territory: voltage extrapolates beyond v_max."""
        curve = self._curve()
        assert curve.voltage_at(Hertz.from_ghz(2.93)).value > 1.4

    def test_flat_curve(self):
        flat = VoltageCurve(
            Volts(1.5), Volts(1.5), Hertz.from_ghz(2.4), Hertz.from_ghz(2.4)
        )
        assert flat.voltage_at(Hertz.from_ghz(2.4)).value == 1.5

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            VoltageCurve(Volts(1.4), Volts(0.8), Hertz(1.0), Hertz(2.0))
        with pytest.raises(ValueError):
            VoltageCurve(Volts(0.8), Volts(1.4), Hertz(2.0), Hertz(1.0))

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ValueError):
            self._curve().voltage_at(Hertz(0.0))
