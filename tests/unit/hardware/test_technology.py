"""Unit tests for process-node physics (measured and projected)."""

import pytest

from repro.core.quantities import Hertz, Volts
from repro.hardware.technology import (
    ALL_NODES,
    NODES,
    PROJECTED_NODES,
    ProcessNode,
    VoltageCurve,
    any_node_for,
    node_for,
)

#: Every node, measured then projected, largest feature size first.
_ALL_ORDER = (130, 65, 45, 32, 22, 14, 10, 7)


class TestNodes:
    def test_all_four_generations_present(self):
        assert sorted(NODES) == [32, 45, 65, 130]

    def test_lookup(self):
        assert node_for(45).nanometers == 45

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            node_for(90)

    def test_capacitance_shrinks_with_node(self):
        scales = [NODES[nm].capacitance_scale for nm in (130, 65, 45, 32)]
        assert scales == sorted(scales, reverse=True)

    def test_leakage_share_grows_with_shrink(self):
        """Post-Dennard: leakage per transistor relative to dynamic energy
        grows at each shrink."""
        ratio = [
            NODES[nm].leakage_scale / NODES[nm].capacitance_scale
            for nm in (130, 65, 45, 32)
        ]
        assert ratio == sorted(ratio)

    def test_voltage_drops_with_node(self):
        volts = [NODES[nm].nominal_voltage.value for nm in (130, 65, 45, 32)]
        assert volts == sorted(volts, reverse=True)


class TestProjectedNodes:
    def test_measured_catalog_unchanged(self):
        """Projected nodes live beside, not inside, the measured study."""
        assert sorted(NODES) == [32, 45, 65, 130]
        assert sorted(PROJECTED_NODES) == [7, 10, 14, 22]
        assert sorted(ALL_NODES) == sorted(_ALL_ORDER)

    def test_projected_flagged_synthetic(self):
        assert all(node.synthetic for node in PROJECTED_NODES.values())
        assert not any(node.synthetic for node in NODES.values())

    def test_lookup_spans_both_eras(self):
        assert any_node_for(130).synthetic is False
        assert any_node_for(7).synthetic is True
        with pytest.raises(KeyError):
            node_for(22)  # measured lookup stays measured-only
        with pytest.raises(KeyError):
            any_node_for(5)

    def test_capacitance_monotone_across_all_nodes(self):
        scales = [ALL_NODES[nm].capacitance_scale for nm in _ALL_ORDER]
        assert scales == sorted(scales, reverse=True)

    def test_capacitance_shrink_slows_post_dennard(self):
        """Per-step shrink factor flattens toward 1.0 after 32 nm."""
        steps = [
            ALL_NODES[b].capacitance_scale / ALL_NODES[a].capacitance_scale
            for a, b in zip(_ALL_ORDER, _ALL_ORDER[1:])
        ]
        measured_era, projected_era = steps[:3], steps[3:]
        assert max(measured_era) < min(projected_era) + 0.15
        assert all(step > 0.6 for step in projected_era)

    def test_leakage_share_monotone_across_all_nodes(self):
        ratios = [
            ALL_NODES[nm].leakage_scale / ALL_NODES[nm].capacitance_scale
            for nm in _ALL_ORDER
        ]
        assert ratios == sorted(ratios)

    def test_voltage_monotone_with_floor(self):
        volts = [ALL_NODES[nm].nominal_voltage.value for nm in _ALL_ORDER]
        assert volts == sorted(volts, reverse=True)
        floors = [PROJECTED_NODES[nm].voltage_floor.value for nm in (22, 14, 10, 7)]
        assert floors == sorted(floors, reverse=True)
        assert min(floors) > 0.5  # threshold-limited, never free-falling

    def test_dark_silicon_grows_with_shrink(self):
        fractions = [
            PROJECTED_NODES[nm].dark_silicon_fraction for nm in (22, 14, 10, 7)
        ]
        assert fractions == sorted(fractions)
        assert fractions[0] > 0.0
        assert all(node.dark_silicon_fraction == 0.0 for node in NODES.values())

    def test_vid_span(self):
        floor, nominal = PROJECTED_NODES[22].vid_span
        assert floor.value == pytest.approx(0.65)
        assert nominal.value == pytest.approx(0.95)
        # Measured nodes publish no floor: the span collapses to nominal.
        floor, nominal = NODES[45].vid_span
        assert floor.value == nominal.value == pytest.approx(1.10)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ProcessNode(22, Volts(0.95), 0.1, 1.5, dark_silicon_fraction=1.0)
        with pytest.raises(ValueError):
            ProcessNode(22, Volts(0.95), 0.1, 1.5, dark_silicon_fraction=-0.1)
        with pytest.raises(ValueError):
            ProcessNode(22, Volts(0.95), 0.1, 1.5, voltage_floor=Volts(1.2))
        with pytest.raises(ValueError):
            ProcessNode(22, Volts(0.95), 0.1, 1.5, voltage_floor=Volts(0.0))


class TestVoltageCurve:
    def _curve(self) -> VoltageCurve:
        return VoltageCurve(
            v_min=Volts(0.8),
            v_max=Volts(1.4),
            f_min=Hertz.from_ghz(1.6),
            f_max=Hertz.from_ghz(2.66),
        )

    def test_endpoints(self):
        curve = self._curve()
        assert curve.voltage_at(Hertz.from_ghz(1.6)).value == pytest.approx(0.8)
        assert curve.voltage_at(Hertz.from_ghz(2.66)).value == pytest.approx(1.4)

    def test_monotone(self):
        curve = self._curve()
        low = curve.voltage_at(Hertz.from_ghz(1.8)).value
        high = curve.voltage_at(Hertz.from_ghz(2.4)).value
        assert low < high

    def test_clamps_below_floor(self):
        curve = self._curve()
        assert curve.voltage_at(Hertz.from_ghz(1.0)).value == pytest.approx(0.8)

    def test_extrapolates_above_ceiling(self):
        """Turbo territory: voltage extrapolates beyond v_max."""
        curve = self._curve()
        assert curve.voltage_at(Hertz.from_ghz(2.93)).value > 1.4

    def test_flat_curve(self):
        flat = VoltageCurve(
            Volts(1.5), Volts(1.5), Hertz.from_ghz(2.4), Hertz.from_ghz(2.4)
        )
        assert flat.voltage_at(Hertz.from_ghz(2.4)).value == 1.5

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            VoltageCurve(Volts(1.4), Volts(0.8), Hertz(1.0), Hertz(2.0))
        with pytest.raises(ValueError):
            VoltageCurve(Volts(0.8), Volts(1.4), Hertz(2.0), Hertz(1.0))

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ValueError):
            self._curve().voltage_at(Hertz(0.0))

    @pytest.mark.parametrize("nanometers", sorted(PROJECTED_NODES, reverse=True))
    def test_projected_vid_boundaries_exact(self, nanometers):
        """A curve built from a projected node's VID span must return the
        floor exactly at f_min and the nominal voltage exactly at f_max —
        interpolation error at the boundaries would leak into every
        synthesized spec's power model."""
        node = PROJECTED_NODES[nanometers]
        floor, nominal = node.vid_span
        curve = VoltageCurve(
            v_min=floor,
            v_max=nominal,
            f_min=Hertz.from_ghz(1.0),
            f_max=Hertz.from_ghz(3.5),
        )
        assert curve.voltage_at(Hertz.from_ghz(1.0)).value == floor.value
        assert curve.voltage_at(Hertz.from_ghz(3.5)).value == nominal.value
        # Below the floor the curve clamps; above the ceiling it
        # extrapolates beyond nominal (turbo territory).
        assert curve.voltage_at(Hertz.from_ghz(0.5)).value == floor.value
        assert curve.voltage_at(Hertz.from_ghz(3.8)).value > nominal.value
        midpoint = curve.voltage_at(Hertz.from_ghz(2.25)).value
        assert midpoint == pytest.approx((floor.value + nominal.value) / 2)
