"""Unit tests for the thermal model."""

import pytest

from repro.core.quantities import Watts
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.thermal import (
    T_AMBIENT,
    T_JUNCTION_MAX,
    ThermalModel,
    boost_headroom,
    stock_cooler,
)


class TestThermalModel:
    def test_idle_at_ambient(self):
        model = ThermalModel(theta_ja=0.5)
        assert model.junction_c(Watts(0.0)) == T_AMBIENT

    def test_temperature_linear_in_power(self):
        model = ThermalModel(theta_ja=0.5)
        assert model.junction_c(Watts(40.0)) == pytest.approx(T_AMBIENT + 20.0)

    def test_headroom_sign(self):
        model = ThermalModel(theta_ja=0.5)
        assert model.sustains(Watts(100.0))
        assert not model.sustains(Watts(150.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalModel(theta_ja=0.0)
        with pytest.raises(ValueError):
            ThermalModel(theta_ja=0.5).junction_c(Watts(-1.0))


class TestStockCooler:
    def test_tdp_sits_at_junction_limit(self):
        """TDP's definition (§2.5): designed dissipation at the limit."""
        for spec in (CORE_I7_45, ATOM_45):
            cooler = stock_cooler(spec)
            assert cooler.junction_c(Watts(float(spec.tdp_w))) == pytest.approx(
                T_JUNCTION_MAX
            )

    def test_small_parts_get_weaker_coolers(self):
        assert stock_cooler(ATOM_45).theta_ja > stock_cooler(CORE_I7_45).theta_ja


class TestBoostHeadroom:
    def test_idle_full_headroom(self):
        assert boost_headroom(CORE_I7_45, Watts(0.0)) == pytest.approx(1.0)

    def test_tdp_zero_headroom(self):
        assert boost_headroom(CORE_I7_45, Watts(130.0)) == pytest.approx(0.0)

    def test_clamped_below_zero(self):
        assert boost_headroom(CORE_I7_45, Watts(200.0)) == 0.0

    def test_typical_measured_power_leaves_headroom(self):
        """Fig. 2: measured power sits well under TDP, so boost sustains."""
        assert boost_headroom(CORE_I7_45, Watts(60.0)) > 0.4
