"""Unit tests for Turbo Boost semantics (§3.6)."""

import pytest

from repro.hardware.catalog import ATOM_45, CORE_I5_32, CORE_I7_45
from repro.hardware.config import Configuration, stock
from repro.hardware.turbo import TurboState, power_multiplier, resolve


def _i7(turbo: bool = True) -> Configuration:
    return Configuration(CORE_I7_45, 4, 2, 2.66, turbo_enabled=turbo)


class TestResolve:
    def test_all_cores_one_step(self):
        state = resolve(_i7(), busy_cores=4)
        assert state.steps == 1
        assert state.frequency.ghz == pytest.approx(2.66 + 0.133)

    def test_single_core_two_steps(self):
        """§3.6: 'When only one core was active, the core ran 266MHz
        faster.'"""
        state = resolve(_i7(), busy_cores=1)
        assert state.steps == 2
        assert state.frequency.ghz == pytest.approx(2.66 + 0.266)

    def test_disabled_turbo_no_boost(self):
        state = resolve(_i7(turbo=False), busy_cores=1)
        assert not state.engaged
        assert state.frequency.ghz == pytest.approx(2.66)

    def test_no_turbo_hardware_no_boost(self):
        state = resolve(stock(ATOM_45), busy_cores=1)
        assert not state.engaged

    def test_idle_package_no_boost(self):
        assert not resolve(_i7(), busy_cores=0).engaged

    def test_two_busy_cores_single_step(self):
        assert resolve(_i7(), busy_cores=2).steps == 1

    def test_negative_busy_rejected(self):
        with pytest.raises(ValueError):
            resolve(_i7(), busy_cores=-1)

    def test_i5_steps(self):
        config = stock(CORE_I5_32)
        assert resolve(config, 2).frequency.ghz == pytest.approx(3.46 + 0.133)
        assert resolve(config, 1).frequency.ghz == pytest.approx(3.46 + 0.266)


class TestPowerMultiplier:
    def test_disengaged_is_unity(self):
        assert power_multiplier(_i7(), TurboState(0, _i7().clock)) == 1.0

    def test_i7_per_step_cost(self):
        state = resolve(_i7(), busy_cores=4)
        assert power_multiplier(_i7(), state) == pytest.approx(1.21)

    def test_i7_two_steps_compound(self):
        state = resolve(_i7(), busy_cores=1)
        assert power_multiplier(_i7(), state) == pytest.approx(1.21**2)

    def test_i5_cheaper_boost(self):
        """Fig. 10: the i5's boost is nearly free; the i7's is costly."""
        i5 = stock(CORE_I5_32)
        i5_mult = power_multiplier(i5, resolve(i5, 2))
        i7_mult = power_multiplier(_i7(), resolve(_i7(), 4))
        assert i5_mult < 1.05 < i7_mult
