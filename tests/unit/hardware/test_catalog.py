"""Unit tests for the processor catalog against the paper's Table 3."""

import pytest

from repro.hardware.catalog import (
    NODE_45NM_KEYS,
    PROCESSORS,
    PROCESSORS_BY_KEY,
    REFERENCE_PROCESSOR_KEYS,
    processor,
    reference_processors,
)


class TestTable3Facts:
    """Every data-sheet cell from Table 3, row by row."""

    def test_eight_processors(self):
        assert len(PROCESSORS) == 8

    @pytest.mark.parametrize(
        "key,cmp_smt,llc_mb,ghz,nm,mtrans,die,tdp",
        [
            ("pentium4_130", "1C2T", 0.5, 2.4, 130, 55, 131, 66),
            ("c2d_65", "2C1T", 4.0, 2.4, 65, 291, 143, 65),
            ("c2q_65", "4C1T", 8.0, 2.4, 65, 582, 286, 105),
            ("i7_45", "4C2T", 8.0, 2.66, 45, 731, 263, 130),
            ("atom_45", "1C2T", 0.5, 1.66, 45, 47, 26, 4),
            ("c2d_45", "2C1T", 3.0, 3.06, 45, 228, 82, 65),
            ("atomd_45", "2C2T", 1.0, 1.66, 45, 176, 87, 13),
            ("i5_32", "2C2T", 4.0, 3.46, 32, 382, 81, 73),
        ],
    )
    def test_specs(self, key, cmp_smt, llc_mb, ghz, nm, mtrans, die, tdp):
        spec = processor(key)
        assert spec.cmp_smt == cmp_smt
        assert spec.llc_mb == llc_mb
        assert spec.stock_clock.ghz == pytest.approx(ghz, abs=0.01)
        assert spec.node.nanometers == nm
        assert spec.transistors_m == mtrans
        assert spec.die_mm2 == die
        assert spec.tdp_w == tdp

    @pytest.mark.parametrize(
        "key,vid",
        [
            ("pentium4_130", None),
            ("c2d_65", (0.85, 1.50)),
            ("c2q_65", (0.85, 1.50)),
            ("i7_45", (0.80, 1.38)),
            ("atom_45", (0.90, 1.16)),
            ("c2d_45", (0.85, 1.36)),
            ("atomd_45", (0.80, 1.17)),
            ("i5_32", (0.65, 1.40)),
        ],
    )
    def test_vid_ranges(self, key, vid):
        assert processor(key).vid_range == vid

    @pytest.mark.parametrize(
        "key,sspec",
        [
            ("pentium4_130", "SL6WF"),
            ("c2d_65", "SL9S8"),
            ("c2q_65", "SL9UM"),
            ("i7_45", "SLBCH"),
            ("atom_45", "SLB6Z"),
            ("c2d_45", "SLGTD"),
            ("atomd_45", "SLBLA"),
            ("i5_32", "SLBLT"),
        ],
    )
    def test_sspec_numbers(self, key, sspec):
        assert processor(key).sspec == sspec

    def test_prices(self):
        assert processor("pentium4_130").price_usd is None
        assert processor("atom_45").price_usd == 29
        assert processor("c2q_65").price_usd == 851
        assert processor("i7_45").price_usd == 284

    def test_only_nehalems_have_turbo(self):
        turbo = {spec.key for spec in PROCESSORS if spec.has_turbo}
        assert turbo == {"i7_45", "i5_32"}

    def test_smt_machines(self):
        smt = {spec.key for spec in PROCESSORS if spec.has_smt}
        assert smt == {"pentium4_130", "atom_45", "atomd_45", "i7_45", "i5_32"}

    def test_hardware_contexts(self):
        assert processor("i7_45").hardware_contexts == 8
        assert processor("atom_45").hardware_contexts == 2
        assert processor("c2q_65").hardware_contexts == 4


class TestStructure:
    def test_keys_unique(self):
        assert len(PROCESSORS_BY_KEY) == len(PROCESSORS)

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            processor("pentium3")

    def test_reference_machines_span_all_generations(self):
        nodes = {processor(k).node.nanometers for k in REFERENCE_PROCESSOR_KEYS}
        assert nodes == {130, 65, 45, 32}

    def test_reference_machines_span_all_families(self):
        families = {processor(k).family.name for k in REFERENCE_PROCESSOR_KEYS}
        assert families == {"NetBurst", "Core", "Bonnell", "Nehalem"}

    def test_reference_processors_helper(self):
        assert tuple(s.key for s in reference_processors()) == REFERENCE_PROCESSOR_KEYS

    def test_45nm_parts(self):
        assert {processor(k).node.nanometers for k in NODE_45NM_KEYS} == {45}
        assert len(NODE_45NM_KEYS) == 4

    def test_clock_points_end_at_stock(self):
        for spec in PROCESSORS:
            assert spec.clock_points_ghz[-1] == pytest.approx(spec.stock_clock.ghz)

    def test_supports_clock(self):
        i7 = processor("i7_45")
        assert i7.supports_clock(1.6)
        assert not i7.supports_clock(3.2)
