"""Unit tests for the JVM substrate: heap, JIT, GC, placement, protocol."""

import pytest

from repro.hardware.catalog import ATOM_45, CORE_I7_45, PENTIUM4_130
from repro.hardware.config import Configuration, stock
from repro.runtime.gc import collector_load, displacement_factor
from repro.runtime.heap import HeapPolicy, PAPER_HEAP_FACTOR
from repro.runtime.jit import DEFAULT_WARMUP, JitWarmup
from repro.runtime.jvm import ServicePlacement, plan
from repro.runtime.methodology import (
    JAVA_INVOCATIONS,
    STEADY_STATE_ITERATION,
    protocol_for,
)
from repro.workloads.catalog import benchmark


class TestHeap:
    def test_paper_heap_is_neutral(self):
        assert HeapPolicy().gc_load_scale() == pytest.approx(1.0)

    def test_tighter_heap_collects_more(self):
        assert HeapPolicy(2.0).gc_load_scale() > 1.0

    def test_looser_heap_collects_less(self):
        assert HeapPolicy(6.0).gc_load_scale() < 1.0

    def test_heap_must_exceed_live_set(self):
        with pytest.raises(ValueError):
            HeapPolicy(1.0)

    def test_paper_factor_is_three(self):
        assert PAPER_HEAP_FACTOR == 3.0


class TestJit:
    def test_first_iteration_slowest(self):
        overheads = [DEFAULT_WARMUP.overhead_at(i) for i in range(1, 8)]
        assert overheads == sorted(overheads, reverse=True)

    def test_settles_at_iteration_five(self):
        """The model justifies the paper's fifth-iteration methodology."""
        assert DEFAULT_WARMUP.iterations_to_settle() == STEADY_STATE_ITERATION

    def test_steady_residue_persists(self):
        assert DEFAULT_WARMUP.overhead_at(50) > 1.0

    def test_iterations_one_based(self):
        with pytest.raises(ValueError):
            DEFAULT_WARMUP.overhead_at(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            JitWarmup(decay=1.0)
        with pytest.raises(ValueError):
            JitWarmup(first_iteration_overhead=-1.0)


class TestCollector:
    def test_load_at_paper_heap_matches_signature(self):
        jvm = benchmark("db").jvm
        load = collector_load(jvm)
        assert load.work_fraction == pytest.approx(jvm.service_fraction)

    def test_tight_heap_raises_only_gc_share(self):
        jvm = benchmark("db").jvm
        tight = collector_load(jvm, HeapPolicy(1.5))
        assert tight.work_fraction > jvm.service_fraction
        # JIT share is heap-insensitive, so scale is less than pure 1/(h-1).
        assert tight.work_fraction < jvm.service_fraction * 4.0

    def test_displacement_relief_interpolates(self):
        jvm = benchmark("db").jvm
        full = displacement_factor(jvm, relief=0.0)
        none = displacement_factor(jvm, relief=1.0)
        half = displacement_factor(jvm, relief=0.5)
        assert full == jvm.displacement_mpki_factor
        assert none == pytest.approx(1.0)
        assert none < half < full

    def test_relief_bounds(self):
        with pytest.raises(ValueError):
            displacement_factor(benchmark("db").jvm, relief=1.5)


class TestPlacement:
    def test_spare_core_on_multicore(self):
        resolved = plan(benchmark("db"), stock(CORE_I7_45))
        assert resolved.placement is ServicePlacement.SPARE_CORE
        assert resolved.displacement == pytest.approx(1.0)
        assert resolved.sibling_friction == 0.0

    def test_colocated_on_single_context(self):
        resolved = plan(benchmark("db"), Configuration(CORE_I7_45, 1, 1, 2.66))
        assert resolved.placement is ServicePlacement.COLOCATED
        assert resolved.displacement == benchmark("db").jvm.displacement_mpki_factor
        assert resolved.serial_service == pytest.approx(
            resolved.load.work_fraction
        )

    def test_smt_sibling_on_single_core_smt(self):
        resolved = plan(benchmark("db"), stock(ATOM_45))
        assert resolved.placement is ServicePlacement.SMT_SIBLING
        assert 1.0 < resolved.displacement < benchmark("db").jvm.displacement_mpki_factor
        assert resolved.sibling_friction > 0.0

    def test_netburst_sibling_friction_largest(self):
        """Workload Finding 2's mechanism: trace-cache pressure."""
        p4 = plan(benchmark("db"), stock(PENTIUM4_130))
        atom = plan(benchmark("db"), stock(ATOM_45))
        assert p4.sibling_friction > atom.sibling_friction

    def test_fully_threaded_app_parallel_collector(self):
        """Scalable Java saturating every context: the parallel collector
        rides the app's parallelism rather than serialising fully."""
        resolved = plan(benchmark("xalan"), stock(CORE_I7_45))
        assert resolved.placement is ServicePlacement.COLOCATED
        assert resolved.serial_service < resolved.load.work_fraction
        assert resolved.overlapped_service == 0.0

    def test_native_benchmark_rejected(self):
        with pytest.raises(ValueError):
            plan(benchmark("mcf"), stock(CORE_I7_45))

    def test_app_threads_clipped_to_contexts(self):
        resolved = plan(benchmark("pjbb2005"), Configuration(CORE_I7_45, 2, 1, 2.66))
        assert resolved.app_threads == 2


class TestProtocol:
    def test_java_protocol(self):
        protocol = protocol_for(benchmark("db"))
        assert protocol.invocations == JAVA_INVOCATIONS == 20
        assert protocol.iteration == STEADY_STATE_ITERATION == 5

    def test_spec_protocol(self):
        protocol = protocol_for(benchmark("mcf"))
        assert protocol.invocations == 3
        assert protocol.iteration == 1

    def test_parsec_protocol(self):
        protocol = protocol_for(benchmark("vips"))
        assert protocol.invocations == 5
