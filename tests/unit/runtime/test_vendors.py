"""Unit tests for JVM vendor profiles (§2.2's future work)."""

import pytest

from repro.runtime.vendors import HOTSPOT, J9, JROCKIT, VENDORS, JvmVendor, vendor
from repro.workloads.catalog import benchmark


class TestProfiles:
    def test_three_vendors(self):
        assert len(VENDORS) == 3

    def test_lookup(self):
        assert vendor("hotspot") is HOTSPOT
        assert vendor("JRockit") is JROCKIT
        assert vendor("j9") is J9
        with pytest.raises(KeyError):
            vendor("dalvik")

    def test_hotspot_is_identity(self):
        assert HOTSPOT.performance_factor(benchmark("db")) == 1.0
        assert HOTSPOT.activity_factor == 1.0
        assert HOTSPOT.service_scale == 1.0

    def test_per_benchmark_factor_stable(self):
        db = benchmark("db")
        assert JROCKIT.performance_factor(db) == JROCKIT.performance_factor(db)

    def test_per_benchmark_factors_vary(self):
        factors = {
            JROCKIT.performance_factor(benchmark(name))
            for name in ("db", "xalan", "antlr", "sunflow", "jess")
        }
        assert len(factors) == 5

    def test_vendors_disagree_per_benchmark(self):
        db = benchmark("db")
        assert JROCKIT.performance_factor(db) != J9.performance_factor(db)

    def test_native_benchmarks_rejected(self):
        with pytest.raises(ValueError):
            JROCKIT.performance_factor(benchmark("mcf"))

    def test_validation(self):
        with pytest.raises(ValueError):
            JvmVendor("x", mean_performance=0.0, benchmark_spread=0.1,
                      activity_factor=1.0, service_scale=1.0)
        with pytest.raises(ValueError):
            JvmVendor("x", mean_performance=1.0, benchmark_spread=-0.1,
                      activity_factor=1.0, service_scale=1.0)


class TestEngineIntegration:
    def test_vendor_changes_measured_times(self):
        from repro.execution.engine import ExecutionEngine
        from repro.hardware.catalog import CORE_I7_45
        from repro.hardware.config import stock

        hotspot = ExecutionEngine()
        j9 = ExecutionEngine(jvm_vendor=J9)
        config = stock(CORE_I7_45)
        db = benchmark("db")
        assert hotspot.ideal(db, config).seconds.value != j9.ideal(
            db, config
        ).seconds.value

    def test_vendor_does_not_affect_native(self):
        from repro.execution.engine import ExecutionEngine
        from repro.hardware.catalog import CORE_I7_45
        from repro.hardware.config import stock

        hotspot = ExecutionEngine()
        j9 = ExecutionEngine(jvm_vendor=J9)
        config = stock(CORE_I7_45)
        mcf = benchmark("mcf")
        assert hotspot.ideal(mcf, config).seconds.value == j9.ideal(
            mcf, config
        ).seconds.value

    def test_calibration_is_vendor_independent(self):
        """Table 1's reference times are HotSpot's: a different vendor must
        not silently re-anchor the workload sizes."""
        from repro.execution.engine import ExecutionEngine

        hotspot = ExecutionEngine()
        j9 = ExecutionEngine(jvm_vendor=J9)
        db = benchmark("db")
        assert hotspot.instructions_for(db) == pytest.approx(
            j9.instructions_for(db)
        )
