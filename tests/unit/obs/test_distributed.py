"""Unit tests for W3C traceparent propagation and span-tree assembly."""

import pytest

from repro.obs.distributed import (
    TraceContext,
    TraceStore,
    build_span_tree,
    format_traceparent,
    new_request_id,
    new_trace_id,
    orphan_parent_ids,
    parse_traceparent,
    span_id_hex,
)


class TestTraceparent:
    def test_round_trip(self):
        trace_id = new_trace_id()
        header = format_traceparent(trace_id, 0xABCD)
        context = parse_traceparent(header)
        assert context == TraceContext(trace_id, span_id_hex(0xABCD), True)
        assert context.header() == header

    def test_unsampled_flag(self):
        header = format_traceparent("ab" * 16, 1, sampled=False)
        assert header.endswith("-00")
        assert parse_traceparent(header).sampled is False

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-abcd-01",
            "00-" + "0" * 32 + "-" + "ab" * 8 + "-01",  # zero trace id
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # zero span id
            "ff-" + "ab" * 16 + "-" + "ab" * 8 + "-01",  # forbidden version
            "00-" + "AB" * 16,  # truncated
        ],
    )
    def test_malformed_headers_are_ignored_not_errors(self, header):
        """The W3C rule: a bad traceparent starts a fresh trace."""
        assert parse_traceparent(header) is None

    def test_case_and_whitespace_are_tolerated(self):
        header = "  00-" + "AB" * 16 + "-" + "CD" * 8 + "-01  "
        context = parse_traceparent(header)
        assert context is not None
        assert context.trace_id == "ab" * 16

    def test_ids_are_fresh_and_well_formed(self):
        assert new_trace_id() != new_trace_id()
        assert len(new_trace_id()) == 32
        assert len(new_request_id()) == 16
        assert span_id_hex(1) == "0" * 15 + "1"


class TestSpanTree:
    def _spans(self):
        return [
            {"name": "leaf", "span_id": 3, "parent_id": 2},
            {"name": "mid", "span_id": 2, "parent_id": 1},
            {"name": "root", "span_id": 1, "parent_id": None},
        ]

    def test_single_rooted_tree(self):
        spans = self._spans()
        assert orphan_parent_ids(spans) == set()
        tree = build_span_tree(spans)
        assert tree["name"] == "root"
        assert tree["children"][0]["name"] == "mid"
        assert tree["children"][0]["children"][0]["name"] == "leaf"

    def test_orphans_are_reported(self):
        spans = [{"name": "lost", "span_id": 5, "parent_id": 99}]
        assert orphan_parent_ids(spans) == {99}

    def test_multiple_roots_yield_no_tree(self):
        spans = [
            {"name": "a", "span_id": 1, "parent_id": None},
            {"name": "b", "span_id": 2, "parent_id": None},
        ]
        assert build_span_tree(spans) is None
        assert build_span_tree([]) is None


class TestTraceStore:
    def test_put_get_and_eviction(self):
        store = TraceStore(capacity=2)
        for i in range(3):
            store.put(f"r{i}", {"spans": [i]})
        assert len(store) == 2
        assert store.get("r0") is None  # evicted, oldest first
        assert store.get("r2") == {"spans": [2]}
        assert store.request_ids() == ["r1", "r2"]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)
