"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import math

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("requests_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self, registry):
        c = registry.counter("requests_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_children_are_stable(self, registry):
        c = registry.counter("phases_total")
        serial = c.labels(phase="serial")
        serial.inc(3)
        assert c.labels(phase="serial") is serial
        assert c.labels(phase="parallel").value == 0.0
        assert serial.value == 3.0

    def test_reset_zeroes_children_too(self, registry):
        c = registry.counter("phases_total")
        c.inc()
        c.labels(phase="serial").inc(5)
        registry.reset()
        assert c.value == 0.0
        assert c.labels(phase="serial").value == 0.0

    def test_large_increment_batches(self, registry):
        # The hot path batches (e.g. one inc per measure with the
        # invocation count) rather than ticking per unit.
        c = registry.counter("batched_total")
        c.inc(20)
        c.inc(3)
        assert c.value == 23.0


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("in_flight")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0

    def test_can_go_negative(self, registry):
        g = registry.gauge("delta")
        g.dec(3)
        assert g.value == -3.0


class TestHistogram:
    def test_observations_land_in_correct_buckets(self, registry):
        h = registry.histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        counts = dict(h.bucket_counts())
        assert counts[0.1] == 1
        assert counts[1.0] == 3  # cumulative
        assert counts[10.0] == 4
        assert counts[math.inf] == 5
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        assert h.mean == pytest.approx(56.05 / 5)

    def test_boundary_is_inclusive(self, registry):
        h = registry.histogram("edges", buckets=(1.0,))
        h.observe(1.0)
        assert dict(h.bucket_counts())[1.0] == 1

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_rejects_empty_or_infinite_buckets(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad_a", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("bad_b", buckets=(1.0, math.inf))

    def test_labelled_children_share_buckets(self, registry):
        h = registry.histogram("latency_seconds", buckets=(0.5, 2.0))
        child = h.labels(machine="atom_45")
        assert isinstance(child, Histogram)
        assert child.buckets == (0.5, 2.0)


class TestTimer:
    def test_context_manager_observes_elapsed(self, registry):
        timer = registry.timed("block_seconds")
        with timer:
            pass
        h = registry.get("block_seconds")
        assert h.count == 1
        assert h.sum >= 0.0

    def test_decorator_observes_each_call(self, registry):
        h = registry.histogram("fn_seconds")
        timed = registry.timed("fn_seconds")

        @timed
        def work(x):
            return x * 2

        assert work(21) == 42
        assert work(1) == 2
        assert h.count == 2


class TestRegistry:
    def test_idempotent_creation(self, registry):
        a = registry.counter("hits_total", "help text")
        b = registry.counter("hits_total")
        assert a is b

    def test_kind_conflict_raises(self, registry):
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad-name")
        with pytest.raises(ValueError):
            registry.counter("")

    def test_collect_preserves_registration_order(self, registry):
        registry.counter("a_total")
        registry.gauge("b_value")
        assert [m.name for m in registry.collect()] == ["a_total", "b_value"]

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()


class TestGlobalSwitch:
    def test_disabled_instruments_record_nothing(self, registry):
        c = registry.counter("switched_total")
        h = registry.histogram("switched_seconds")
        g = registry.gauge("switched_value")
        metrics.set_enabled(False)
        try:
            c.inc()
            h.observe(1.0)
            g.set(5.0)
        finally:
            metrics.set_enabled(True)
        assert c.value == 0.0
        assert h.count == 0
        assert g.value == 0.0
        c.inc()
        assert c.value == 1.0
