"""Unit tests for SLO parsing, quantile estimation, and budget math."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloConfig, parse_slo, quantile_summary, slo_report


class TestParseSlo:
    def test_full_spec(self):
        config = parse_slo("p99=250ms,p50=1000us,avail=99.9")
        assert config.latency["p99"] == pytest.approx(0.25)
        assert config.latency["p50"] == pytest.approx(0.001)
        assert config.availability == pytest.approx(0.999)

    def test_bare_numbers_are_seconds_and_fractions_pass_through(self):
        config = parse_slo("p95=2, avail=0.95")
        assert config.latency["p95"] == pytest.approx(2.0)
        assert config.availability == pytest.approx(0.95)

    @pytest.mark.parametrize(
        "spec",
        [
            "p99",  # no value
            "p42=1ms",  # unknown quantile
            "p99=-5ms",  # negative
            "avail=0",  # out of range
            "avail=banana",
            "latency=1s",  # unknown key
        ],
    )
    def test_malformed_specs_raise_with_the_clause(self, spec):
        with pytest.raises(ValueError) as excinfo:
            parse_slo(spec)
        assert spec.split(",")[0] in str(excinfo.value)

    def test_as_dict_is_json_ready(self):
        config = parse_slo("p99=250ms")
        assert config.as_dict() == {
            "latency": {"p99": 0.25},
            "availability": None,
        }


class TestQuantileSummary:
    def test_summary_keys_and_monotonicity(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "test")
        for value in (0.01, 0.02, 0.05, 0.1, 0.5, 1.0):
            histogram.observe(value)
        summary = quantile_summary(histogram)
        assert summary["count"] == 6
        assert 0 < summary["p50_s"] <= summary["p95_s"] <= summary["p99_s"]


def _loaded_registry(status_counts, latencies_by_route=None):
    """A private registry with the instruments slo_report reads."""
    registry = MetricsRegistry()
    requests = registry.counter("repro_service_requests_total", "t")
    for (route, status), count in status_counts.items():
        requests.labels(route=route, status=status).inc(count)
    request_seconds = registry.histogram("repro_http_request_seconds", "t")
    for route, samples in (latencies_by_route or {}).items():
        child = request_seconds.labels(route=route)
        for sample in samples:
            child.observe(sample)
    return registry


class TestSloReport:
    def test_availability_and_error_budget_math(self):
        # 95 OK + 4 client errors + 1 server error: only the 5xx counts
        # against availability -> 99% observed.
        registry = _loaded_registry(
            {
                ("/measure", "200"): 95,
                ("/measure", "400"): 4,
                ("/measure", "500"): 1,
            }
        )
        report = slo_report(parse_slo("avail=99.5"), registry=registry)
        availability = report["availability"]
        assert availability["requests"] == 100
        assert availability["errors"] == 1
        assert availability["observed"] == pytest.approx(0.99)
        budget = availability["error_budget"]
        # target 99.5% allows 0.5% errors; a 1% error rate burns 2x.
        assert budget["allowed_fraction"] == pytest.approx(0.005)
        assert budget["consumed"] == pytest.approx(2.0)
        assert budget["burn_rate"] == pytest.approx(2.0)
        assert any(v.startswith("availability:") for v in report["violations"])
        assert report["ok"] is False

    def test_within_budget_is_ok(self):
        registry = _loaded_registry(
            {("/measure", "200"): 999, ("/measure", "500"): 1}
        )
        report = slo_report(parse_slo("avail=99.5"), registry=registry)
        budget = report["availability"]["error_budget"]
        assert budget["consumed"] == pytest.approx(0.2)
        assert report["violations"] == []
        assert report["ok"] is True

    def test_perfect_target_has_no_budget_and_any_error_violates(self):
        registry = _loaded_registry(
            {("/measure", "200"): 9, ("/measure", "503"): 1}
        )
        report = slo_report(parse_slo("avail=1.0"), registry=registry)
        assert report["availability"]["error_budget"] is None
        assert report["ok"] is False

    def test_latency_violations_per_route(self):
        registry = _loaded_registry(
            {},
            latencies_by_route={
                "/measure": [0.4] * 20,  # p99 well above 250ms
                "/healthz": [0.001] * 20,
            },
        )
        report = slo_report(parse_slo("p99=250ms"), registry=registry)
        assert report["routes"]["/measure"]["violating"] == ["p99"]
        assert report["routes"]["/healthz"]["violating"] == []
        assert "/measure:p99" in report["violations"]

    def test_no_config_reports_observations_only(self):
        registry = _loaded_registry({("/measure", "500"): 5})
        report = slo_report(None, registry=registry)
        assert report["config"] is None
        assert report["availability"]["target"] is None
        assert "error_budget" not in report["availability"]
        assert report["ok"] is True

    def test_no_traffic_is_fully_available(self):
        report = slo_report(
            SloConfig(availability=0.999), registry=MetricsRegistry()
        )
        assert report["availability"]["observed"] == 1.0
        assert report["availability"]["error_budget"]["consumed"] == 0.0
        assert report["ok"] is True
