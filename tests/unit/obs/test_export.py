"""Unit tests for the exposition and summary-table exporters."""

import pytest

from repro.obs.export import (
    _escape_label_value,
    _unescape_label_value,
    parse_prometheus,
    render_prometheus,
    render_summary,
)
from repro.obs.metrics import MetricsRegistry


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    hits = registry.counter("cache_hits_total", "Cache hits")
    hits.inc(7)
    phases = registry.counter("phases_total", "Phases by name")
    phases.labels(phase="serial").inc(3)
    phases.labels(phase="parallel").inc(1)
    gauge = registry.gauge("in_flight", "Work in flight")
    gauge.set(2)
    hist = registry.histogram("latency_seconds", "Latency", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    return registry


class TestPrometheusExposition:
    def test_help_and_type_lines(self):
        text = render_prometheus(_populated_registry())
        assert "# HELP cache_hits_total Cache hits" in text
        assert "# TYPE cache_hits_total counter" in text
        assert "# TYPE in_flight gauge" in text
        assert "# TYPE latency_seconds histogram" in text

    def test_counter_and_gauge_samples(self):
        text = render_prometheus(_populated_registry())
        assert "cache_hits_total 7" in text
        assert "in_flight 2" in text

    def test_labelled_samples(self):
        text = render_prometheus(_populated_registry())
        assert 'phases_total{phase="serial"} 3' in text
        assert 'phases_total{phase="parallel"} 1' in text

    def test_histogram_exposition_is_cumulative(self):
        text = render_prometheus(_populated_registry())
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_count 3" in text
        assert "latency_seconds_sum 5.55" in text

    def test_ends_with_newline(self):
        assert render_prometheus(_populated_registry()).endswith("\n")


class TestLabelEscaping:
    @pytest.mark.parametrize(
        "raw",
        [
            'say "hi"',
            "back\\slash",
            "line\nbreak",
            '\\"mixed\n\\',
            "plain",
        ],
    )
    def test_escape_round_trips(self, raw):
        assert _unescape_label_value(_escape_label_value(raw)) == raw

    def test_exposition_escapes_label_values(self):
        """Regression: raw quotes/backslashes/newlines in a label value
        used to corrupt the exposition line."""
        registry = MetricsRegistry()
        counter = registry.counter("errors_total", "errs")
        counter.labels(detail='fault "x" at C:\\dir\nline2').inc()
        text = render_prometheus(registry)
        line = next(
            l for l in text.splitlines() if l.startswith("errors_total{")
        )
        assert "\n" not in line  # newline stayed escaped
        assert '\\"x\\"' in line
        assert "\\\\dir" in line
        assert "\\n" in line
        # And it parses back to the original value's sample.
        parsed = parse_prometheus(text)
        (labels,) = parsed["errors_total"].keys()
        assert dict(labels)["detail"] == 'fault "x" at C:\\dir\nline2'


class TestParsePrometheus:
    def test_round_trip_of_a_populated_registry(self):
        registry = _populated_registry()
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["cache_hits_total"][()] == 7.0
        assert parsed["in_flight"][()] == 2.0
        assert parsed["phases_total"][(("phase", "serial"),)] == 3.0
        assert parsed["phases_total"][(("phase", "parallel"),)] == 1.0
        assert parsed["latency_seconds_bucket"][(("le", "+Inf"),)] == 3.0
        assert parsed["latency_seconds_count"][()] == 3.0

    def test_comments_and_blank_lines_are_skipped(self):
        parsed = parse_prometheus("# HELP x y\n\n# TYPE x counter\nx 1\n")
        assert parsed == {"x": {(): 1.0}}


class TestSummaryTable:
    def test_rows_for_every_populated_instrument(self):
        table = render_summary(_populated_registry())
        assert "cache_hits_total" in table
        assert 'phases_total' in table
        assert "latency_seconds" in table
        assert "histogram" in table

    def test_histogram_row_has_count_and_mean(self):
        table = render_summary(_populated_registry())
        row = next(l for l in table.splitlines() if "latency_seconds" in l)
        assert "3" in row  # count
        assert "1.85" in row  # mean of 0.05, 0.5, 5.0

    def test_histogram_row_has_quantile_columns(self):
        registry = MetricsRegistry()
        hist = registry.histogram("q_seconds", "q", buckets=(0.1, 1.0))
        for _ in range(100):
            hist.observe(0.05)
        table = render_summary(registry)
        header = table.splitlines()[0]
        assert "p50" in header and "p95" in header and "p99" in header
        row = next(l for l in table.splitlines() if "q_seconds" in l)
        # Every sample landed in the first bucket, so all quantile
        # estimates stay within its (0, 0.1] bounds.
        values = [v for v in row.split() if v.replace(".", "").isdigit()]
        assert values  # count plus quantiles rendered as numbers

    def test_counter_rows_leave_quantiles_blank(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c").inc()
        table = render_summary(registry)
        row = next(l for l in table.splitlines() if "c_total" in l)
        assert "-" in row  # quantile columns are placeholders

    def test_empty_registry_renders_placeholder(self):
        assert render_summary(MetricsRegistry()) == "(no telemetry recorded)"
