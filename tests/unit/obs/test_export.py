"""Unit tests for the exposition and summary-table exporters."""

from repro.obs.export import render_prometheus, render_summary
from repro.obs.metrics import MetricsRegistry


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    hits = registry.counter("cache_hits_total", "Cache hits")
    hits.inc(7)
    phases = registry.counter("phases_total", "Phases by name")
    phases.labels(phase="serial").inc(3)
    phases.labels(phase="parallel").inc(1)
    gauge = registry.gauge("in_flight", "Work in flight")
    gauge.set(2)
    hist = registry.histogram("latency_seconds", "Latency", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    return registry


class TestPrometheusExposition:
    def test_help_and_type_lines(self):
        text = render_prometheus(_populated_registry())
        assert "# HELP cache_hits_total Cache hits" in text
        assert "# TYPE cache_hits_total counter" in text
        assert "# TYPE in_flight gauge" in text
        assert "# TYPE latency_seconds histogram" in text

    def test_counter_and_gauge_samples(self):
        text = render_prometheus(_populated_registry())
        assert "cache_hits_total 7" in text
        assert "in_flight 2" in text

    def test_labelled_samples(self):
        text = render_prometheus(_populated_registry())
        assert 'phases_total{phase="serial"} 3' in text
        assert 'phases_total{phase="parallel"} 1' in text

    def test_histogram_exposition_is_cumulative(self):
        text = render_prometheus(_populated_registry())
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_count 3" in text
        assert "latency_seconds_sum 5.55" in text

    def test_ends_with_newline(self):
        assert render_prometheus(_populated_registry()).endswith("\n")


class TestSummaryTable:
    def test_rows_for_every_populated_instrument(self):
        table = render_summary(_populated_registry())
        assert "cache_hits_total" in table
        assert 'phases_total' in table
        assert "latency_seconds" in table
        assert "histogram" in table

    def test_histogram_row_has_count_and_mean(self):
        table = render_summary(_populated_registry())
        row = next(l for l in table.splitlines() if "latency_seconds" in l)
        assert "3" in row  # count
        assert "1.85" in row  # mean of 0.05, 0.5, 5.0

    def test_empty_registry_renders_placeholder(self):
        assert render_summary(MetricsRegistry()) == "(no telemetry recorded)"
