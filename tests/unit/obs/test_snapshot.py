"""Unit tests for metrics snapshots, deltas, and cross-process merging.

Pool workers snapshot their registry before and after a chunk of work,
ship ``snapshot_delta(after, before)`` home, and the parent merges the
deltas with ``apply_snapshot``.  These tests pin the algebra that makes
the parallel sweep's telemetry equal the sequential sweep's: deltas are
exact, merging is additive, and unseen instruments or labelled children
materialise on the receiving side.
"""

import pytest

from repro.obs.metrics import MetricsRegistry, snapshot_delta


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestInstrumentSnapshots:
    def test_counter_roundtrip_with_children(self, registry):
        c = registry.counter("ops_total")
        c.inc(3)
        c.labels(kind="read").inc(2)
        other = MetricsRegistry().counter("ops_total")
        other.apply_snapshot(c.snapshot())
        assert other.value == 3.0
        assert other.labels(kind="read").value == 2.0

    def test_kind_mismatch_raises(self, registry):
        c = registry.counter("thing_total")
        g = MetricsRegistry().gauge("thing_total_gauge")
        with pytest.raises(TypeError):
            g.apply_snapshot(c.snapshot())

    def test_histogram_bucket_mismatch_raises(self, registry):
        h = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        foreign = MetricsRegistry().histogram("lat_seconds", buckets=(0.5,))
        with pytest.raises(ValueError):
            foreign.apply_snapshot(h.snapshot())


class TestSnapshotDelta:
    def test_delta_isolates_the_bracketed_work(self, registry):
        c = registry.counter("hits_total")
        h = registry.histogram("lat_seconds", buckets=(1.0,))
        c.inc(5)
        h.observe(0.5)
        before = registry.snapshot()
        c.inc(2)
        h.observe(2.0)
        delta = snapshot_delta(registry.snapshot(), before)
        assert delta["hits_total"]["value"] == 2.0
        assert delta["lat_seconds"]["count"] == 1
        assert delta["lat_seconds"]["sum"] == 2.0
        assert delta["lat_seconds"]["counts"] == [0, 1]  # the +Inf slot

    def test_new_children_carry_full_state(self, registry):
        c = registry.counter("ops_total")
        c.labels(kind="read").inc(1)
        before = registry.snapshot()
        c.labels(kind="read").inc(1)
        c.labels(kind="write").inc(4)  # born inside the bracket
        delta = snapshot_delta(registry.snapshot(), before)
        children = delta["ops_total"]["children"]
        assert children[(("kind", "read"),)]["value"] == 1.0
        assert children[(("kind", "write"),)]["value"] == 4.0


class TestRegistryMerge:
    def test_worker_deltas_merge_additively(self, registry):
        """Two worker chunks' deltas folded into a parent registry give
        the totals the parent would have recorded doing the work itself."""
        parent = registry
        parent.counter("invocations_total").inc(10)

        deltas = []
        for chunk in range(2):
            worker = MetricsRegistry()
            c = worker.counter("invocations_total")
            h = worker.histogram("measure_seconds", buckets=(1.0,))
            before = worker.snapshot()
            c.inc(3)
            c.labels(machine="atom_45").inc(chunk + 1)
            h.observe(0.25)
            deltas.append(snapshot_delta(worker.snapshot(), before))

        for delta in deltas:
            parent.apply_snapshot(delta)
        assert parent.counter("invocations_total").value == 16.0
        assert (
            parent.counter("invocations_total").labels(machine="atom_45").value
            == 3.0
        )
        merged = parent.get("measure_seconds")
        assert merged.count == 2
        assert merged.sum == 0.5

    def test_apply_creates_missing_instruments(self, registry):
        worker = MetricsRegistry()
        worker.counter("only_in_worker_total").inc(7)
        worker.histogram("only_in_worker_seconds", buckets=(0.5, 2.0)).observe(1.0)
        worker.gauge("only_in_worker_value").set(3.0)
        registry.apply_snapshot(worker.snapshot())
        assert registry.get("only_in_worker_total").value == 7.0
        hist = registry.get("only_in_worker_seconds")
        assert hist.buckets == (0.5, 2.0)
        assert hist.count == 1
        assert registry.get("only_in_worker_value").value == 3.0
