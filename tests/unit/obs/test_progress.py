"""Unit tests for the rate/ETA progress reporter."""

import io

from repro.obs.progress import ProgressReporter, _format_eta


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestEtaFormatting:
    def test_minutes_seconds(self):
        assert _format_eta(65) == "1:05"

    def test_hours(self):
        assert _format_eta(3725) == "1:02:05"

    def test_clamps_negative(self):
        assert _format_eta(-3) == "0:00"


class TestProgressReporter:
    def _reporter(self, total=None):
        clock = _FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=total, stream=stream, clock=clock, min_interval_s=0.0
        )
        return reporter, clock, stream

    def test_counts_and_rate(self):
        reporter, clock, _ = self._reporter(total=10)
        reporter.advance()
        clock.now = 2.0
        reporter.advance()
        assert reporter.done == 2
        assert reporter.rate == 1.0

    def test_eta_in_rendered_line(self):
        reporter, clock, _ = self._reporter(total=10)
        reporter.advance()
        clock.now = 2.0
        reporter.advance()  # 2 done in 2 s -> 8 left at 1/s
        line = reporter.render()
        assert "[2/10 invocations]" in line
        assert "eta 0:08" in line

    def test_unknown_total_has_no_eta(self):
        reporter, clock, _ = self._reporter()
        reporter.advance()
        clock.now = 1.0
        reporter.advance()
        line = reporter.render()
        assert line.startswith("[2 invocations]")
        assert "eta" not in line

    def test_extend_total_accumulates(self):
        reporter, _, _ = self._reporter()
        reporter.extend_total(5)
        reporter.extend_total(3)
        assert reporter.total == 8

    def test_writes_carriage_return_lines(self):
        reporter, clock, stream = self._reporter(total=2)
        reporter.advance()
        clock.now = 1.0
        reporter.advance()
        reporter.finish()
        output = stream.getvalue()
        assert output.startswith("\r")
        assert output.endswith("\n")
        assert "[2/2 invocations]" in output

    def test_silent_when_unused(self):
        reporter, _, stream = self._reporter()
        reporter.finish()
        assert stream.getvalue() == ""

    def test_rate_suppressed_on_first_tick(self):
        reporter, _, _ = self._reporter(total=10)
        reporter.advance()
        assert reporter.rate == 0.0
        assert "/s" not in reporter.render()
