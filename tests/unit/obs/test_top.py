"""Unit tests for the `repro top` dashboard rendering."""

import io

from repro.obs.top import _bar, render_top, run_top


def _payloads(**overrides):
    health = {
        "status": "ok",
        "uptime_s": 12.5,
        "pending_jobs": 1,
        "completed": 7,
        "coalesced": 2,
        "rejected": 0,
        "failed": 0,
        "store_records": 7,
        "quarantined": 0,
        "in_flight": [
            {
                "benchmark": "mcf",
                "config": "i7-45nm-stock",
                "plan": None,
                "age_s": 0.42,
            }
        ],
    }
    slo = {
        "config": {"latency": {"p99": 0.25}, "availability": 0.999},
        "routes": {
            "/measure": {
                "count": 9,
                "p50_s": 0.01,
                "p95_s": 0.05,
                "p99_s": 0.3,
                "violating": ["p99"],
            }
        },
        "stages": {
            "batch": {"count": 4, "p50_s": 0.02, "p95_s": 0.04, "p99_s": 0.05}
        },
        "availability": {
            "requests": 10,
            "errors": 1,
            "observed": 0.9,
            "target": 0.999,
            "error_budget": {
                "allowed_fraction": 0.001,
                "consumed": 1.0,
                "remaining": 0.0,
                "burn_rate": 100.0,
            },
        },
        "violations": ["/measure:p99"],
        "ok": False,
    }
    metrics = {
        "repro_study_cache_hits_total": {(): 6.0},
        "repro_study_cache_misses_total": {(): 2.0},
    }
    payloads = {"health": health, "slo": slo, "metrics": metrics}
    payloads.update(overrides)
    return payloads


class TestRenderTop:
    def test_frame_surfaces_every_section(self):
        p = _payloads()
        frame = render_top(p["health"], p["slo"], p["metrics"])
        assert "OK" in frame
        assert "completed 7" in frame
        assert "75.0% hit" in frame  # 6 of 8 lookups
        assert "error budget" in frame and "burn x100.00" in frame
        assert "SLO VIOLATIONS: /measure:p99" in frame
        assert "mcf" in frame and "i7-45nm-stock" in frame
        assert "batch" in frame
        assert "!! p99" in frame

    def test_idle_and_unconfigured_degrade_gracefully(self):
        p = _payloads()
        p["health"]["in_flight"] = []
        p["slo"] = {
            "config": None,
            "routes": {},
            "stages": {},
            "availability": {"requests": 0, "errors": 0, "observed": 1.0},
            "violations": [],
            "ok": True,
        }
        frame = render_top(p["health"], p["slo"], {})
        assert "(idle)" in frame
        assert "(no SLO configured)" in frame
        assert "SLO VIOLATIONS" not in frame

    def test_in_flight_table_truncates(self):
        p = _payloads()
        p["health"]["in_flight"] = [
            {"benchmark": f"b{i}", "config": "c", "age_s": 0.1}
            for i in range(14)
        ]
        frame = render_top(p["health"], p["slo"], p["metrics"])
        assert "... and 4 more" in frame

    def test_fleet_worker_table_renders(self):
        p = _payloads()
        p["health"]["fleet"] = {
            "size": 2,
            "live": 2,
            "restarts": 1,
            "requeues": 1,
            "heartbeat_s": 0.25,
            "liveness_misses": 4,
            "workers": [
                {
                    "id": 0,
                    "pid": 4242,
                    "state": "busy",
                    "beats": 17,
                    "chunks_done": 3,
                    "heartbeat_age_s": 0.112,
                },
                {
                    "id": 2,
                    "pid": 4244,
                    "state": "idle",
                    "beats": 9,
                    "chunks_done": 1,
                    "heartbeat_age_s": 0.031,
                },
            ],
        }
        p["metrics"]["repro_fleet_worker_restarts_total"] = {(): 1.0}
        p["metrics"]["repro_fleet_requeues_total"] = {(): 1.0}
        frame = render_top(p["health"], p["slo"], p["metrics"])
        assert "fleet: 2/2 workers live" in frame
        assert "restarts 1" in frame and "requeues 1" in frame
        assert "heartbeat 250ms x4 misses" in frame
        assert "4242" in frame and "busy" in frame
        assert "0.112s" in frame

    def test_pre_fleet_server_degrades_gracefully(self):
        """A /healthz payload without (or with a null) fleet field — an
        older server — must render without crashing or a fleet section."""
        p = _payloads()
        assert "fleet" not in p["health"]
        frame = render_top(p["health"], p["slo"], p["metrics"])
        assert "fleet:" not in frame
        p["health"]["fleet"] = None
        frame = render_top(p["health"], p["slo"], p["metrics"])
        assert "fleet:" not in frame
        # A fleet payload missing optional keys still renders.
        p["health"]["fleet"] = {"workers": [{}]}
        frame = render_top(p["health"], p["slo"], p["metrics"])
        assert "fleet:" in frame

    def test_bar_clamps(self):
        assert _bar(-1.0) == "[" + "-" * 24 + "]"
        assert _bar(2.0) == "[" + "#" * 24 + "]"
        assert _bar(0.5).count("#") == 12


class TestRunTop:
    def test_unreachable_server_exits_3(self):
        stream = io.StringIO()
        code = run_top(
            "http://127.0.0.1:9",  # discard port: nothing listens
            interval_s=0.0,
            iterations=1,
            stream=stream,
        )
        assert code == 3
        assert stream.getvalue() == ""
