"""Unit tests for hierarchical tracing: nesting, contextvars, JSONL."""

import json

from repro.obs.tracing import NULL_SPAN, Tracer, default_tracer, read_jsonl, root_span


class TestSpanNesting:
    def test_parent_propagates_through_nesting(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_a_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert tracer.children_of(root) == (a, b)

    def test_finished_in_completion_order(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished] == ["inner", "outer"]
        assert [s.name for s in tracer.roots()] == ["outer"]

    def test_parent_restored_after_exception(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            try:
                with tracer.span("boom"):
                    raise RuntimeError("x")
            except RuntimeError:
                pass
            with tracer.span("after") as after:
                pass
        assert after.parent_id == root.span_id

    def test_durations_and_attributes_recorded(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", benchmark="db") as span:
            span.set_attribute("invocations", 4)
        assert span.duration_s is not None and span.duration_s >= 0.0
        assert span.attributes == {"benchmark": "db", "invocations": 4}


class TestDisabledTracer:
    def test_disabled_spans_are_null_and_unrecorded(self):
        tracer = Tracer()
        with tracer.span("ignored") as span:
            span.set_attribute("k", "v")
        assert span is NULL_SPAN
        assert tracer.finished == []

    def test_default_tracer_starts_disabled(self):
        assert default_tracer() is default_tracer()


class TestJsonlRoundTrip:
    def test_export_and_read_back(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", experiment="fig4"):
            with tracer.span("inner", benchmark="db"):
                pass
        path = tracer.export_jsonl(tmp_path / "spans.jsonl")
        spans = read_jsonl(path)
        assert len(spans) == 2
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["attributes"]["experiment"] == "fig4"
        assert by_name["inner"]["duration_s"] >= 0.0

    def test_every_line_is_valid_json(self, tmp_path):
        tracer = Tracer(enabled=True)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        path = tracer.export_jsonl(tmp_path / "spans.jsonl")
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                record = json.loads(line)
                assert {"name", "span_id", "parent_id", "start_unix_s",
                        "duration_s", "attributes"} <= set(record)

    def test_clear_resets_ids_and_spans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.finished == []
        with tracer.span("b") as span:
            pass
        assert span.span_id == 1


class TestRootSpanHelper:
    def test_root_span_names_the_experiment(self):
        tracer = default_tracer()
        tracer.enable()
        try:
            with root_span("fig4") as span:
                pass
            assert span.name == "experiment:fig4"
            assert span.attributes["experiment"] == "fig4"
        finally:
            tracer.disable()
            tracer.clear()
