"""Unit tests for hierarchical tracing: nesting, contextvars, JSONL."""

import json

from repro.obs.tracing import (
    NULL_SPAN,
    Tracer,
    chrome_trace_events,
    default_tracer,
    read_jsonl,
    root_span,
    write_chrome_trace,
)


class TestSpanNesting:
    def test_parent_propagates_through_nesting(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_a_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert tracer.children_of(root) == (a, b)

    def test_finished_in_completion_order(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished] == ["inner", "outer"]
        assert [s.name for s in tracer.roots()] == ["outer"]

    def test_parent_restored_after_exception(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            try:
                with tracer.span("boom"):
                    raise RuntimeError("x")
            except RuntimeError:
                pass
            with tracer.span("after") as after:
                pass
        assert after.parent_id == root.span_id

    def test_durations_and_attributes_recorded(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", benchmark="db") as span:
            span.set_attribute("invocations", 4)
        assert span.duration_s is not None and span.duration_s >= 0.0
        assert span.attributes == {"benchmark": "db", "invocations": 4}


class TestDisabledTracer:
    def test_disabled_spans_are_null_and_unrecorded(self):
        tracer = Tracer()
        with tracer.span("ignored") as span:
            span.set_attribute("k", "v")
        assert span is NULL_SPAN
        assert tracer.finished == []

    def test_default_tracer_starts_disabled(self):
        assert default_tracer() is default_tracer()


class TestJsonlRoundTrip:
    def test_export_and_read_back(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", experiment="fig4"):
            with tracer.span("inner", benchmark="db"):
                pass
        path = tracer.export_jsonl(tmp_path / "spans.jsonl")
        spans = read_jsonl(path)
        assert len(spans) == 2
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["attributes"]["experiment"] == "fig4"
        assert by_name["inner"]["duration_s"] >= 0.0

    def test_every_line_is_valid_json(self, tmp_path):
        tracer = Tracer(enabled=True)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        path = tracer.export_jsonl(tmp_path / "spans.jsonl")
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                record = json.loads(line)
                assert {"name", "span_id", "parent_id", "start_unix_s",
                        "duration_s", "attributes"} <= set(record)

    def test_clear_drops_spans_but_keeps_the_id_base(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a") as a:
            pass
        tracer.clear()
        assert tracer.finished == []
        with tracer.span("b") as b:
            pass
        # Counter restarts, so the first post-clear span re-issues the
        # first ID of this tracer's seeded range.
        assert b.span_id == a.span_id


class TestSpanIdentity:
    def test_distinct_tracers_never_alias(self):
        """Regression: the old per-process count(1) made every tracer
        issue 1, 2, 3... so coordinator and worker spans collided."""
        tracers = [Tracer(enabled=True) for _ in range(4)]
        ids = set()
        for tracer in tracers:
            for i in range(50):
                with tracer.span(f"s{i}") as span:
                    pass
                ids.add(span.span_id)
        assert len(ids) == 4 * 50

    def test_reseed_moves_to_a_fresh_id_range(self):
        tracer = Tracer(enabled=True)
        with tracer.span("before") as before:
            pass
        tracer.reseed()
        with tracer.span("after") as after:
            pass
        assert after.span_id != before.span_id

    def test_span_ids_are_positive_63_bit(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s") as span:
            pass
        assert 0 < span.span_id < 1 << 63


class TestExplicitParents:
    def test_child_span_attaches_to_the_given_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("request") as request:
            pass
        with tracer.child_span("batch", parent_id=request.span_id) as batch:
            with tracer.span("nested") as nested:
                pass
        assert batch.parent_id == request.span_id
        assert nested.parent_id == batch.span_id

    def test_record_span_captures_an_elapsed_interval(self):
        tracer = Tracer(enabled=True)
        span = tracer.record_span(
            "queue.wait", parent_id=None, start_unix_s=100.0, duration_s=0.25
        )
        assert span in tracer.finished
        assert span.duration_s == 0.25
        assert round(span.as_dict()["start_unix_s"], 3) == 100.0

    def test_record_span_is_null_when_disabled(self):
        tracer = Tracer()
        span = tracer.record_span("x", None, 0.0, 0.0)
        assert span.span_id is None
        assert tracer.finished == []

    def test_reparent_children_moves_only_matched_spans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("batch") as batch:
            with tracer.span("a", benchmark="mcf") as a:
                pass
            with tracer.span("b", benchmark="db") as b:
                pass
            with tracer.span("keep") as keep:
                pass
        targets = {"mcf": 777}
        moved = tracer.reparent_children(
            batch.span_id,
            lambda span: targets.get(span.attributes.get("benchmark")),
        )
        assert moved == 1
        assert a.parent_id == 777
        assert b.parent_id == batch.span_id
        assert keep.parent_id == batch.span_id


class TestAdoption:
    def _worker_payload(self):
        worker = Tracer(enabled=True)
        with worker.span("executor.chunk", pair=0) as chunk:
            with worker.span("engine.execute"):
                pass
        return [span.as_dict() for span in worker.finished], chunk

    def test_adopt_remaps_ids_and_preserves_structure(self):
        payload, _ = self._worker_payload()
        parent = Tracer(enabled=True)
        with parent.span("sweep") as sweep:
            pass
        adopted = parent.adopt(payload, parent_id=sweep.span_id)
        by_name = {span.name: span for span in adopted}
        chunk = by_name["executor.chunk"]
        assert chunk.parent_id == sweep.span_id
        assert by_name["engine.execute"].parent_id == chunk.span_id
        old_ids = {record["span_id"] for record in payload}
        assert old_ids.isdisjoint({span.span_id for span in adopted})

    def test_adoption_order_determines_ids(self):
        """Adopting identical payloads in the same order yields the same
        structure on two tracers — the property the parallel merge needs."""
        payload, _ = self._worker_payload()
        shapes = []
        for _ in range(2):
            adopter = Tracer(enabled=True)
            adopted = adopter.adopt(payload)
            base = adopter._id_base
            shapes.append(
                [
                    (
                        span.name,
                        span.span_id - base,
                        None if span.parent_id is None else span.parent_id - base,
                    )
                    for span in adopted
                ]
            )
        assert shapes[0] == shapes[1]


class TestSubtreeAndPrune:
    def test_subtree_collects_descendants_in_any_finish_order(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            with tracer.span("mid") as mid:
                with tracer.span("leaf"):
                    pass
        with tracer.span("other"):
            pass
        # mid's leaf finished first; the sweep still finds it via mid.
        names = {span.name for span in tracer.subtree(root.span_id)}
        assert names == {"root", "mid", "leaf"}
        assert mid.parent_id == root.span_id

    def test_detach_subtree_returns_and_removes_in_one_pass(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            with tracer.span("mid"):
                with tracer.span("leaf"):
                    pass
        with tracer.span("other"):
            pass
        detached = tracer.detach_subtree(root.span_id)
        # Finished order is preserved: children close before parents.
        assert [span.name for span in detached] == ["leaf", "mid", "root"]
        assert [span.name for span in tracer.finished] == ["other"]
        # Detaching an unknown root is a no-op that returns nothing.
        assert tracer.detach_subtree(root.span_id) == []
        assert len(tracer.finished) == 1

    def test_prune_removes_exactly_the_given_ids(self):
        tracer = Tracer(enabled=True)
        with tracer.span("gone") as gone:
            pass
        with tracer.span("kept"):
            pass
        removed = tracer.prune([gone.span_id])
        assert removed == 1
        assert [span.name for span in tracer.finished] == ["kept"]


class TestChromeTrace:
    def test_events_mirror_spans(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", pid=4242):
            with tracer.span("inner"):
                pass
        events = chrome_trace_events(tracer.finished)
        assert len(events) == len(tracer.finished)
        by_name = {event["name"]: event for event in events}
        assert by_name["outer"]["ph"] == "X"
        assert by_name["outer"]["pid"] == 4242
        assert (
            by_name["inner"]["args"]["parent_id"]
            == by_name["outer"]["args"]["span_id"]
        )
        path = write_chrome_trace(tracer.finished, tmp_path / "trace.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert len(payload["traceEvents"]) == len(events)

    def test_accepts_exported_dicts_too(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("s"):
            pass
        jsonl = tracer.export_jsonl(tmp_path / "spans.jsonl")
        from_dicts = chrome_trace_events(read_jsonl(jsonl))
        from_spans = chrome_trace_events(tracer.finished)
        assert from_dicts == from_spans


class TestRootSpanHelper:
    def test_root_span_names_the_experiment(self):
        tracer = default_tracer()
        tracer.enable()
        try:
            with root_span("fig4") as span:
                pass
            assert span.name == "experiment:fig4"
            assert span.attributes["experiment"] == "fig4"
        finally:
            tracer.disable()
            tracer.clear()
