"""Unit tests for the Benchmark type's invariants."""

import pytest

from repro.workloads.benchmark import Benchmark, Group, Language, Suite
from repro.workloads.characteristics import JvmBehavior, WorkloadCharacter


def _character(**overrides) -> WorkloadCharacter:
    base = dict(ilp=1.8, branch_mpki=3.0, memory_mpki=2.0, footprint_mb=10.0)
    base.update(overrides)
    return WorkloadCharacter(**base)


class TestGroupSemantics:
    def test_language_of_groups(self):
        assert Group.NATIVE_NONSCALABLE.language is Language.NATIVE
        assert Group.NATIVE_SCALABLE.language is Language.NATIVE
        assert Group.JAVA_NONSCALABLE.language is Language.JAVA
        assert Group.JAVA_SCALABLE.language is Language.JAVA

    def test_scalability_of_groups(self):
        assert Group.NATIVE_SCALABLE.scalable
        assert Group.JAVA_SCALABLE.scalable
        assert not Group.NATIVE_NONSCALABLE.scalable
        assert not Group.JAVA_NONSCALABLE.scalable


class TestBenchmarkInvariants:
    def test_java_requires_jvm_behaviour(self):
        with pytest.raises(ValueError):
            Benchmark(
                name="x",
                suite=Suite.DACAPO_9,
                group=Group.JAVA_NONSCALABLE,
                description="",
                reference_seconds=1.0,
                character=_character(),
                jvm=None,
            )

    def test_native_rejects_jvm_behaviour(self):
        with pytest.raises(ValueError):
            Benchmark(
                name="x",
                suite=Suite.PARSEC,
                group=Group.NATIVE_SCALABLE,
                description="",
                reference_seconds=1.0,
                character=_character(software_threads=None, parallel_fraction=0.9),
                jvm=JvmBehavior(service_fraction=0.05),
            )

    def test_scalable_group_requires_threads(self):
        with pytest.raises(ValueError):
            Benchmark(
                name="x",
                suite=Suite.PARSEC,
                group=Group.NATIVE_SCALABLE,
                description="",
                reference_seconds=1.0,
                character=_character(),  # single-threaded
            )

    def test_reference_time_positive(self):
        with pytest.raises(ValueError):
            Benchmark(
                name="x",
                suite=Suite.SPEC_CINT2006,
                group=Group.NATIVE_NONSCALABLE,
                description="",
                reference_seconds=0.0,
                character=_character(),
            )

    def test_managed_flag(self):
        native = Benchmark(
            name="x",
            suite=Suite.SPEC_CINT2006,
            group=Group.NATIVE_NONSCALABLE,
            description="",
            reference_seconds=1.0,
            character=_character(),
        )
        assert not native.managed
        assert native.language is Language.NATIVE
