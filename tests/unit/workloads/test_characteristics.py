"""Unit tests for workload signatures."""

import pytest

from repro.workloads.characteristics import JvmBehavior, WorkloadCharacter


def _character(**overrides) -> WorkloadCharacter:
    base = dict(
        ilp=1.8,
        branch_mpki=3.0,
        memory_mpki=2.0,
        footprint_mb=10.0,
    )
    base.update(overrides)
    return WorkloadCharacter(**base)


class TestWorkloadCharacter:
    def test_defaults(self):
        c = _character()
        assert c.single_threaded
        assert c.parallel_fraction == 0.0
        assert c.activity == 1.0

    def test_dtlb_defaults_to_memory_correlate(self):
        c = _character(memory_mpki=5.0)
        assert c.dtlb_mpki == pytest.approx(4.0)

    def test_explicit_dtlb_respected(self):
        assert _character(dtlb_mpki=9.0).dtlb_mpki == 9.0

    def test_threads_on_elastic(self):
        c = _character(software_threads=None, parallel_fraction=0.9)
        assert c.threads_on(8) == 8
        assert c.threads_on(1) == 1

    def test_threads_on_fixed(self):
        c = _character(software_threads=4, parallel_fraction=0.5)
        assert c.threads_on(8) == 4
        assert c.threads_on(2) == 4  # engine clips later

    def test_threads_on_rejects_zero_contexts(self):
        with pytest.raises(ValueError):
            _character().threads_on(0)

    def test_ilp_floor(self):
        with pytest.raises(ValueError):
            _character(ilp=0.9)

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            _character(branch_mpki=-1.0)
        with pytest.raises(ValueError):
            _character(memory_mpki=-1.0)

    def test_parallel_fraction_bounds(self):
        with pytest.raises(ValueError):
            _character(parallel_fraction=1.0)
        with pytest.raises(ValueError):
            _character(parallel_fraction=-0.1)

    def test_activity_positive(self):
        with pytest.raises(ValueError):
            _character(activity=0.0)


class TestJvmBehavior:
    def test_defaults(self):
        jvm = JvmBehavior(service_fraction=0.05)
        assert jvm.displacement_mpki_factor >= 1.0
        assert jvm.gc_threads >= 1

    def test_service_fraction_bounds(self):
        with pytest.raises(ValueError):
            JvmBehavior(service_fraction=1.0)
        with pytest.raises(ValueError):
            JvmBehavior(service_fraction=-0.1)

    def test_displacement_cannot_shrink(self):
        with pytest.raises(ValueError):
            JvmBehavior(service_fraction=0.05, displacement_mpki_factor=0.9)

    def test_variability_nonnegative(self):
        with pytest.raises(ValueError):
            JvmBehavior(service_fraction=0.05, variability=-0.01)

    def test_gc_threads_positive(self):
        with pytest.raises(ValueError):
            JvmBehavior(service_fraction=0.05, gc_threads=0)
