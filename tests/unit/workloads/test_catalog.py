"""Unit tests for the 61-benchmark catalog (Table 1)."""

import pytest

from repro.workloads.benchmark import Group, Language, Suite
from repro.workloads.catalog import (
    BENCHMARKS,
    benchmark,
    by_group,
    by_suite,
    group_sizes,
    groups,
    multithreaded_java,
    names,
    single_threaded_java,
)


class TestCensus:
    def test_sixty_one_benchmarks(self):
        assert len(BENCHMARKS) == 61

    def test_group_sizes(self):
        sizes = group_sizes()
        assert sizes[Group.NATIVE_NONSCALABLE] == 27
        assert sizes[Group.NATIVE_SCALABLE] == 11
        assert sizes[Group.JAVA_NONSCALABLE] == 18
        assert sizes[Group.JAVA_SCALABLE] == 5

    def test_suite_sizes(self):
        assert len(by_suite(Suite.SPEC_CINT2006)) == 12
        assert len(by_suite(Suite.SPEC_CFP2006)) == 15
        assert len(by_suite(Suite.PARSEC)) == 11
        assert len(by_suite(Suite.SPECJVM)) == 7
        assert len(by_suite(Suite.DACAPO_06)) == 2
        assert len(by_suite(Suite.DACAPO_9)) == 13
        assert len(by_suite(Suite.PJBB2005)) == 1

    def test_names_unique(self):
        assert len({b.name for b in BENCHMARKS}) == 61

    def test_paper_exclusions_absent(self):
        """410.bwaves/481.wrf (icc failures), freqmine/dedup (PARSEC),
        tradesoap (socket timeouts) are excluded, as in the paper."""
        for excluded in ("bwaves", "wrf", "freqmine", "dedup", "tradesoap"):
            with pytest.raises(KeyError):
                benchmark(excluded)

    def test_known_members(self):
        assert benchmark("mcf").suite is Suite.SPEC_CINT2006
        assert benchmark("lbm").suite is Suite.SPEC_CFP2006
        assert benchmark("fluidanimate").suite is Suite.PARSEC
        assert benchmark("db").suite is Suite.SPECJVM
        assert benchmark("antlr").suite is Suite.DACAPO_06
        assert benchmark("sunflow").suite is Suite.DACAPO_9
        assert benchmark("pjbb2005").suite is Suite.PJBB2005


class TestGrouping:
    def test_canonical_group_order(self):
        assert groups() == (
            Group.NATIVE_NONSCALABLE,
            Group.NATIVE_SCALABLE,
            Group.JAVA_NONSCALABLE,
            Group.JAVA_SCALABLE,
        )

    def test_java_scalable_members(self):
        """The paper's five most scalable multithreaded Java codes."""
        assert set(names(by_group(Group.JAVA_SCALABLE))) == {
            "sunflow",
            "xalan",
            "tomcat",
            "lusearch",
            "eclipse",
        }

    def test_languages_match_groups(self):
        for b in BENCHMARKS:
            assert (b.language is Language.JAVA) == b.group.value.startswith("Java")

    def test_all_spec_cpu_single_threaded(self):
        for b in by_group(Group.NATIVE_NONSCALABLE):
            assert not b.multithreaded

    def test_all_parsec_scale_to_available_contexts(self):
        for b in by_group(Group.NATIVE_SCALABLE):
            assert b.character.software_threads is None
            assert b.character.parallel_fraction > 0.9

    def test_java_nonscalable_mixes_st_and_mt(self):
        jn = by_group(Group.JAVA_NONSCALABLE)
        assert any(b.multithreaded for b in jn)
        assert any(not b.multithreaded for b in jn)

    def test_mt_jn_members_match_paper(self):
        """§2.1: pjbb2005, avrora, batik, h2, jython, pmd, tradebeans
        (plus mtrt's two threads) are the multithreaded JN members."""
        mt_jn = {
            b.name for b in by_group(Group.JAVA_NONSCALABLE) if b.multithreaded
        }
        assert mt_jn == {
            "pjbb2005", "avrora", "batik", "h2", "jython", "pmd",
            "tradebeans", "mtrt",
        }


class TestSubsets:
    def test_single_threaded_java(self):
        subset = names(single_threaded_java())
        assert "db" in subset and "antlr" in subset
        assert "sunflow" not in subset and "mtrt" not in subset
        assert len(subset) == 10

    def test_multithreaded_java_covers_fig1(self):
        from repro.experiments import paper_data

        subset = set(names(multithreaded_java()))
        assert subset == set(paper_data.FIG1_JAVA_SCALABILITY)


class TestReferenceTimes:
    @pytest.mark.parametrize(
        "name,seconds",
        [
            ("perlbench", 1037), ("bzip2", 1563), ("gamess", 3505),
            ("lbm", 1298), ("blackscholes", 482), ("x264", 265),
            ("compress", 5.3), ("mtrt", 0.8), ("eclipse", 50.5),
            ("pjbb2005", 10.6), ("tradebeans", 18.4), ("sunflow", 19.4),
        ],
    )
    def test_table1_reference_seconds(self, name, seconds):
        assert benchmark(name).reference_seconds == seconds

    def test_native_reference_times_longer_than_java(self):
        """§2.6: native workloads run much longer (more repetition)."""
        native = [b.reference_seconds for b in BENCHMARKS if not b.managed]
        java = [b.reference_seconds for b in BENCHMARKS if b.managed]
        assert min(native) > max(java)
