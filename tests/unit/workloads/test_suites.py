"""Unit tests for the per-suite signature content.

Checks the domain knowledge encoded in the suite modules: which
benchmarks are the memory-bound outliers, which are the power hogs, how
the suites differ in control-flow behaviour — the facts the experiments
lean on.
"""

import pytest

from repro.core.statistics import mean
from repro.workloads.benchmark import Suite
from repro.workloads.catalog import benchmark, by_suite


class TestSpecCpu2006:
    def test_known_memory_bound_members(self):
        """mcf, lbm, milc, libquantum, omnetpp, GemsFDTD are the famous
        memory-bound SPEC codes."""
        for name in ("mcf", "lbm", "milc", "libquantum", "omnetpp", "GemsFDTD"):
            assert benchmark(name).character.memory_mpki >= 10.0, name

    def test_known_compute_bound_members(self):
        for name in ("hmmer", "gamess", "povray", "namd", "h264ref"):
            assert benchmark(name).character.memory_mpki < 1.0, name

    def test_cint_branchier_than_cfp(self):
        cint = mean([b.character.branch_mpki for b in by_suite(Suite.SPEC_CINT2006)])
        cfp = mean([b.character.branch_mpki for b in by_suite(Suite.SPEC_CFP2006)])
        assert cint > 2 * cfp

    def test_cfp_higher_activity_than_cint(self):
        """FP pipelines switch more logic per instruction."""
        cint = mean([b.character.activity for b in by_suite(Suite.SPEC_CINT2006)])
        cfp = mean([b.character.activity for b in by_suite(Suite.SPEC_CFP2006)])
        assert cfp > cint

    def test_omnetpp_lowest_activity(self):
        """§2.5's 23 W minimum on the i7 is omnetpp."""
        spec = by_suite(Suite.SPEC_CINT2006) + by_suite(Suite.SPEC_CFP2006)
        lowest = min(spec, key=lambda b: b.character.activity)
        assert lowest.name == "omnetpp"


class TestParsec:
    def test_fluidanimate_hungriest(self):
        """§2.5's 89 W maximum on the i7 is fluidanimate."""
        hungriest = max(
            by_suite(Suite.PARSEC), key=lambda b: b.character.activity
        )
        assert hungriest.name == "fluidanimate"

    def test_canneal_and_streamcluster_memory_bound(self):
        assert benchmark("canneal").character.memory_mpki >= 10.0
        assert benchmark("streamcluster").character.memory_mpki >= 8.0

    def test_all_highly_parallel(self):
        for bench in by_suite(Suite.PARSEC):
            assert bench.character.parallel_fraction > 0.9, bench.name

    def test_swaptions_tiny_working_set(self):
        assert benchmark("swaptions").character.footprint_mb <= 2.0


class TestJavaSuites:
    def test_db_displacement_strongest(self):
        """§3.1's worked example: db suffers the most collector
        displacement of the SPECjvm codes."""
        specjvm = by_suite(Suite.SPECJVM)
        worst = max(specjvm, key=lambda b: b.jvm.displacement_mpki_factor)
        assert worst.name == "db"

    def test_antlr_most_jvm_intensive(self):
        """§3.1: antlr spends up to 50% of its time in the JVM."""
        java = [b for b in by_suite(Suite.DACAPO_06) + by_suite(Suite.DACAPO_9)
                + by_suite(Suite.SPECJVM)]
        heaviest = max(java, key=lambda b: b.jvm.service_fraction)
        assert heaviest.name == "antlr"
        assert heaviest.jvm.service_fraction > 0.35

    def test_mpegaudio_barely_allocates(self):
        assert benchmark("mpegaudio").jvm.service_fraction <= 0.02

    def test_mtrt_two_threads(self):
        """'Dual-threaded raytracer' (Table 1)."""
        assert benchmark("mtrt").character.software_threads == 2

    def test_pjbb_eight_warehouses(self):
        from repro.workloads.suites.pjbb2005 import TRANSACTIONS_PER_WAREHOUSE, WAREHOUSES

        assert WAREHOUSES == 8
        assert TRANSACTIONS_PER_WAREHOUSE == 10_000
        assert benchmark("pjbb2005").character.software_threads == 8

    def test_dacapo9_scalable_sorted_by_paper_scalability(self):
        """sunflow must out-scale eclipse (Fig. 1's extremes)."""
        assert (
            benchmark("sunflow").character.parallel_fraction
            > benchmark("eclipse").character.parallel_fraction
        )

    @pytest.mark.parametrize(
        "name", ["avrora", "batik", "h2", "jython", "pmd", "tradebeans"]
    )
    def test_mt_nonscalable_parallel_fractions_low(self, name):
        assert benchmark(name).character.parallel_fraction < 0.5
