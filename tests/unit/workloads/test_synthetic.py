"""Unit tests for the synthetic workload builder."""

import pytest

from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import Configuration, stock
from repro.workloads.benchmark import Group
from repro.workloads.synthetic import synthetic


class TestDescriptors:
    def test_compute_bound_extreme(self):
        bench = synthetic("cb", boundness=0.0)
        assert bench.character.ilp > 2.4
        assert bench.character.memory_mpki < 1.0

    def test_memory_bound_extreme(self):
        bench = synthetic("mb", boundness=1.0)
        assert bench.character.ilp < 1.3
        assert bench.character.memory_mpki > 15.0
        assert bench.character.activity < 0.7

    def test_group_selection(self):
        assert synthetic("a").group is Group.NATIVE_NONSCALABLE
        assert synthetic("b", managed=True).group is Group.JAVA_NONSCALABLE
        assert synthetic("c", parallelism=0.95).group is Group.NATIVE_SCALABLE
        assert (
            synthetic("d", parallelism=0.95, managed=True).group
            is Group.JAVA_SCALABLE
        )

    def test_managed_gets_jvm_behaviour(self):
        bench = synthetic("j", managed=True, service_fraction=0.2)
        assert bench.jvm is not None
        assert bench.jvm.service_fraction == 0.2

    def test_fixed_thread_count(self):
        bench = synthetic("t", parallelism=0.5, threads=4)
        assert bench.character.software_threads == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic("x", boundness=1.5)
        with pytest.raises(ValueError):
            synthetic("x", parallelism=1.0)
        with pytest.raises(ValueError):
            synthetic("x", parallelism=0.95, threads=1)


class TestEngineAcceptance:
    def test_runs_on_the_study_machines(self, engine):
        bench = synthetic("svc", boundness=0.5, parallelism=0.9, managed=True,
                          reference_seconds=8.0)
        execution = engine.ideal(bench, stock(CORE_I7_45))
        assert execution.seconds.value > 0
        assert 20.0 < execution.average_power.value < 95.0

    def test_reference_time_calibrates(self, engine):
        from repro.core.statistics import mean
        from repro.hardware.catalog import reference_processors

        bench = synthetic("svc2", boundness=0.4, reference_seconds=8.0)
        times = [
            engine.ideal(bench, stock(spec)).seconds.value
            for spec in reference_processors()
        ]
        assert mean(times) == pytest.approx(8.0, rel=1e-6)

    def test_parallel_synthetic_scales(self, engine):
        bench = synthetic("scale", parallelism=0.93, reference_seconds=8.0)
        one = engine.ideal(bench, Configuration(CORE_I7_45, 1, 1, 2.66))
        eight = engine.ideal(bench, Configuration(CORE_I7_45, 4, 2, 2.66))
        assert one.seconds.value / eight.seconds.value > 2.0

    def test_memory_bound_scales_worse_than_compute_bound(self, engine):
        compute = synthetic("c", boundness=0.05, parallelism=0.93)
        memory = synthetic("m", boundness=0.95, parallelism=0.93)

        def scaling(bench):
            one = engine.ideal(bench, Configuration(CORE_I7_45, 1, 1, 2.66))
            eight = engine.ideal(bench, Configuration(CORE_I7_45, 4, 2, 2.66))
            return one.seconds.value / eight.seconds.value

        assert scaling(memory) < scaling(compute)

    def test_study_measures_synthetic(self, study):
        bench = synthetic("measured", boundness=0.5, reference_seconds=6.0)
        result = study.measure(bench, stock(CORE_I7_45))
        assert result.watts > 0
        assert result.speedup > 0
