"""Unit tests for the execution engine."""

import pytest

from repro.execution.engine import ExecutionEngine
from repro.hardware.catalog import ATOM_45, CORE2DUO_65, CORE_I7_45
from repro.hardware.config import Configuration, stock
from repro.runtime.heap import HeapPolicy
from repro.workloads.catalog import benchmark


class TestBasicExecution:
    def test_execution_has_positive_time_and_power(self, engine):
        ex = engine.ideal(benchmark("db"), stock(CORE_I7_45))
        assert ex.seconds.value > 0
        assert ex.average_power.value > 0

    def test_phase_durations_sum_to_total(self, engine):
        ex = engine.ideal(benchmark("fluidanimate"), stock(CORE_I7_45))
        assert sum(p.seconds for p in ex.phases) == pytest.approx(ex.seconds.value)

    def test_single_threaded_has_one_phase(self, engine):
        ex = engine.ideal(benchmark("mcf"), stock(CORE_I7_45))
        assert len(ex.phases) == 1
        assert ex.phases[0].name == "serial"

    def test_parallel_workload_has_two_phases(self, engine):
        ex = engine.ideal(benchmark("fluidanimate"), stock(CORE_I7_45))
        assert [p.name for p in ex.phases] == ["serial", "parallel"]

    def test_energy_consistent(self, engine):
        ex = engine.ideal(benchmark("db"), stock(CORE_I7_45))
        assert ex.energy.value == pytest.approx(
            ex.average_power.value * ex.seconds.value
        )

    def test_events_populated(self, engine):
        ex = engine.ideal(benchmark("db"), stock(CORE_I7_45))
        assert ex.events.instructions > 0
        assert ex.events.cycles > 0
        assert ex.events.ipc > 0.1


class TestScalingBehaviour:
    def test_parsec_scales_on_i7(self, engine):
        """§2.1: PARSEC improves ~3.8x over eight contexts on the i7."""
        one = engine.ideal(benchmark("blackscholes"), Configuration(CORE_I7_45, 1, 1, 2.66))
        eight = engine.ideal(benchmark("blackscholes"), Configuration(CORE_I7_45, 4, 2, 2.66))
        speedup = one.seconds.value / eight.seconds.value
        assert 3.0 < speedup < 5.5

    def test_native_single_thread_ignores_cores(self, engine):
        """Native single-threaded work never gains from CMP (§3.1)."""
        one = engine.ideal(benchmark("mcf"), Configuration(CORE_I7_45, 1, 1, 2.66))
        four = engine.ideal(benchmark("mcf"), Configuration(CORE_I7_45, 4, 1, 2.66))
        assert four.seconds.value == pytest.approx(one.seconds.value, rel=1e-6)

    def test_native_single_thread_pays_idle_power(self, engine):
        one = engine.ideal(benchmark("mcf"), Configuration(CORE_I7_45, 1, 1, 2.66))
        four = engine.ideal(benchmark("mcf"), Configuration(CORE_I7_45, 4, 1, 2.66))
        assert four.average_power.value > one.average_power.value

    def test_java_single_thread_gains_from_second_core(self, engine):
        """Workload Finding 1."""
        one = engine.ideal(benchmark("db"), Configuration(CORE_I7_45, 1, 1, 2.66))
        two = engine.ideal(benchmark("db"), Configuration(CORE_I7_45, 2, 1, 2.66))
        assert one.seconds.value / two.seconds.value > 1.15

    def test_downclocking_slows_and_saves(self, engine):
        fast = engine.ideal(benchmark("x264"), Configuration(CORE_I7_45, 4, 2, 2.66))
        slow = engine.ideal(benchmark("x264"), Configuration(CORE_I7_45, 4, 2, 1.6))
        assert slow.seconds.value > fast.seconds.value
        assert slow.average_power.value < fast.average_power.value


class TestTurboInteraction:
    def test_single_thread_gets_double_boost(self, engine):
        ex = engine.ideal(benchmark("mcf"), stock(CORE_I7_45))
        assert ex.phases[0].turbo.steps == 2

    def test_parallel_phase_single_step(self, engine):
        ex = engine.ideal(benchmark("fluidanimate"), stock(CORE_I7_45))
        assert ex.phases[-1].turbo.steps == 1

    def test_disabled_turbo_no_steps(self, engine):
        ex = engine.ideal(benchmark("mcf"), Configuration(CORE_I7_45, 4, 2, 2.66))
        assert all(p.turbo.steps == 0 for p in ex.phases)


class TestProtocolEffects:
    def test_warmup_slows_early_iterations(self, engine):
        config = stock(ATOM_45)
        first = engine.execute(benchmark("db"), config, iteration=1)
        fifth = engine.execute(benchmark("db"), config, iteration=5)
        assert first.seconds.value > fifth.seconds.value

    def test_native_iteration_agnostic(self, engine):
        config = stock(ATOM_45)
        a = engine.execute(benchmark("mcf"), config, iteration=1)
        b = engine.execute(benchmark("mcf"), config, iteration=5)
        assert a.seconds.value == pytest.approx(b.seconds.value)

    def test_java_invocations_vary(self, engine):
        config = stock(ATOM_45)
        times = {
            engine.execute(benchmark("db"), config, invocation=i).seconds.value
            for i in range(5)
        }
        assert len(times) == 5

    def test_invocations_reproducible(self, engine):
        config = stock(ATOM_45)
        a = engine.execute(benchmark("db"), config, invocation=3)
        b = engine.execute(benchmark("db"), config, invocation=3)
        assert a.seconds.value == b.seconds.value


class TestEngineOptions:
    def test_disabling_jvm_services(self):
        plain = ExecutionEngine(jvm_services_enabled=False)
        with_services = ExecutionEngine()
        one = Configuration(CORE_I7_45, 1, 1, 2.66)
        two = Configuration(CORE_I7_45, 2, 1, 2.66)
        ratio_plain = (
            plain.ideal(benchmark("db"), one).seconds.value
            / plain.ideal(benchmark("db"), two).seconds.value
        )
        ratio_services = (
            with_services.ideal(benchmark("db"), one).seconds.value
            / with_services.ideal(benchmark("db"), two).seconds.value
        )
        assert ratio_plain == pytest.approx(1.0, abs=0.01)
        assert ratio_services > 1.15

    def test_tight_heap_slows_java(self):
        tight = ExecutionEngine(heap=HeapPolicy(1.5))
        normal = ExecutionEngine()
        config = Configuration(CORE_I7_45, 1, 1, 2.66)
        # Same benchmark work: recalibrate both engines against their own
        # reference, so compare raw seconds per calibrated instruction count.
        t = tight.ideal(benchmark("db"), config)
        n = normal.ideal(benchmark("db"), config)
        t_rate = t.events.instructions / t.seconds.value
        n_rate = n.events.instructions / n.seconds.value
        assert t.seconds.value != n.seconds.value or t_rate != n_rate

    def test_instruction_calibration_cached(self, engine):
        a = engine.instructions_for(benchmark("db"))
        b = engine.instructions_for(benchmark("db"))
        assert a == b


class TestMemoryBandwidthInteraction:
    def test_fsb_quad_saturates_on_streaming(self, engine):
        """canneal's aggregate miss stream floods the C2D65's FSB: the
        four-thread i7 run scales far better than the two-core C2D65."""
        c2d_one = engine.ideal(benchmark("canneal"), Configuration(CORE2DUO_65, 1, 1, 2.4))
        c2d_two = engine.ideal(benchmark("canneal"), Configuration(CORE2DUO_65, 2, 1, 2.4))
        fsb_scaling = c2d_one.seconds.value / c2d_two.seconds.value
        i7_one = engine.ideal(benchmark("canneal"), Configuration(CORE_I7_45, 1, 1, 2.66))
        i7_two = engine.ideal(benchmark("canneal"), Configuration(CORE_I7_45, 2, 1, 2.66))
        ddr3_scaling = i7_one.seconds.value / i7_two.seconds.value
        assert fsb_scaling < ddr3_scaling
