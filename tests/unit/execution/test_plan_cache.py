"""Unit tests for the engine's execution-plan cache.

The cache memoises the deterministic skeleton of a (benchmark,
configuration, iteration) execution; only the per-invocation noise
scalars are applied on replay.  Its contract is bit-identity: a replayed
execution must equal — float for float — the one a cold engine builds
from scratch, or the goldens (and the parallel executor's byte-identity
guarantee) silently drift.
"""

import pickle

from repro.execution.engine import ExecutionEngine
from repro.faults.injector import injected
from repro.faults.plan import FaultPlan
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.obs.metrics import default_registry
from repro.workloads.catalog import benchmark

CLEAN = FaultPlan()


def _phase_tuple(execution):
    return [
        (
            p.name,
            p.seconds,
            p.busy_cores,
            p.utilisation,
            p.frequency,
            p.turbo,
            p.power,
        )
        for p in execution.phases
    ]


def _assert_bit_identical(a, b):
    assert b.seconds.value == a.seconds.value
    assert _phase_tuple(b) == _phase_tuple(a)
    assert b.events == a.events


class TestPlanCacheBitIdentity:
    def test_replay_matches_cold_engine_managed(self):
        """A managed benchmark (JVM plan, warm-up curve) replayed from the
        plan cache equals a cold engine's from-scratch execution."""
        bench = benchmark("eclipse")
        config = stock(CORE_I7_45)
        with injected(CLEAN):
            warm = ExecutionEngine()
            first = warm.execute(bench, config, invocation=2)
            replay = warm.execute(bench, config, invocation=2)
            cold = ExecutionEngine().execute(bench, config, invocation=2)
        _assert_bit_identical(first, replay)
        _assert_bit_identical(first, cold)

    def test_replay_matches_cold_engine_native(self):
        bench = benchmark("mcf")
        config = stock(ATOM_45)
        with injected(CLEAN):
            warm = ExecutionEngine()
            first = warm.execute(bench, config, invocation=0)
            replay = warm.execute(bench, config, invocation=0)
            cold = ExecutionEngine().execute(bench, config, invocation=0)
        _assert_bit_identical(first, replay)
        _assert_bit_identical(first, cold)

    def test_invocations_share_a_plan_but_not_noise(self):
        """Different invocations replay the same skeleton with different
        noise: one miss, then hits, and distinct measured values."""
        registry = default_registry()
        hits = registry.get("repro_engine_plan_cache_hits_total")
        misses = registry.get("repro_engine_plan_cache_misses_total")
        bench = benchmark("db")
        config = stock(CORE_I7_45)
        with injected(CLEAN):
            engine = ExecutionEngine()
            engine.instructions_for(bench)  # calibrate outside the window
            hits_0, misses_0 = hits.value, misses.value
            runs = [
                engine.execute(bench, config, invocation=i) for i in range(4)
            ]
        assert misses.value - misses_0 == 1
        assert hits.value - hits_0 == 3
        assert len({run.seconds.value for run in runs}) == len(runs)


class TestEnginePickling:
    def test_calibration_travels_but_plans_rebuild(self):
        bench = benchmark("lusearch")
        config = stock(ATOM_45)
        with injected(CLEAN):
            parent = ExecutionEngine()
            expected = parent.execute(bench, config, invocation=1)
            worker = pickle.loads(pickle.dumps(parent))
            assert worker.calibration_snapshot() == parent.calibration_snapshot()
            assert worker._plan_cache == {}
            _assert_bit_identical(expected, worker.execute(
                bench, config, invocation=1
            ))

    def test_preload_calibration_skips_probe_runs(self):
        registry = default_registry()
        probes = registry.get("repro_engine_calibration_probes_total")
        bench = benchmark("mcf")
        with injected(CLEAN):
            donor = ExecutionEngine()
            expected = donor.instructions_for(bench)
            fresh = ExecutionEngine()
            fresh.preload_calibration(donor.calibration_snapshot())
            probes_0 = probes.value
            assert fresh.instructions_for(bench) == expected
        assert probes.value == probes_0
