"""Unit tests for the SMT and thread-placement models."""

import pytest

from repro.core.quantities import Hertz
from repro.execution.cpi import thread_cpi
from repro.execution.scaling import (
    aggregate_throughput,
    place_threads,
    sync_inflation,
)
from repro.execution.smt import (
    core_throughput_gain,
    sibling_slowdown,
    utilisation_gap,
)
from repro.hardware.catalog import ATOM_45, CORE_I7_45, PENTIUM4_130
from repro.hardware.config import Configuration, stock
from repro.hardware.microarch import BONNELL, NEHALEM, NETBURST
from repro.native.compiler import Toolchain
from repro.workloads.catalog import benchmark


def _breakdown(name: str, spec):
    config = stock(spec)
    return thread_cpi(
        benchmark(name).character, config, Toolchain.GCC, config.clock
    )


class TestSmtGain:
    def test_gain_above_unity_for_stalling_code(self):
        b = _breakdown("canneal", CORE_I7_45)
        assert core_throughput_gain(NEHALEM, b) > 1.1

    def test_atom_gains_most(self):
        """Architecture Finding 2: the in-order Atom leaves the most
        slots empty, so SMT recovers the most."""
        atom = core_throughput_gain(BONNELL, _breakdown("canneal", ATOM_45))
        p4 = core_throughput_gain(NETBURST, _breakdown("canneal", PENTIUM4_130))
        assert atom > p4

    def test_gain_clamped_at_unity(self):
        b = _breakdown("swaptions", CORE_I7_45)
        assert core_throughput_gain(NEHALEM, b, extra_contention=5.0) == 1.0

    def test_extra_contention_reduces_gain(self):
        b = _breakdown("canneal", CORE_I7_45)
        assert core_throughput_gain(NEHALEM, b, 0.1) < core_throughput_gain(
            NEHALEM, b
        )

    def test_utilisation_gap_bounds(self):
        b = _breakdown("canneal", CORE_I7_45)
        assert 0.0 <= utilisation_gap(NEHALEM, b) < 1.0

    def test_negative_contention_rejected(self):
        with pytest.raises(ValueError):
            core_throughput_gain(NEHALEM, _breakdown("mcf", CORE_I7_45), -0.1)


class TestSiblingSlowdown:
    def test_at_least_unity(self):
        b = _breakdown("db", PENTIUM4_130)
        assert sibling_slowdown(NETBURST, b) >= 1.0

    def test_netburst_worse_than_nehalem(self):
        p4 = sibling_slowdown(NETBURST, _breakdown("db", PENTIUM4_130), 0.3)
        i7 = sibling_slowdown(NEHALEM, _breakdown("db", CORE_I7_45), 0.3)
        assert p4 > i7


class TestPlacement:
    def test_cores_before_siblings(self):
        """The scheduler spreads threads over whole cores first."""
        p = place_threads(4, stock(CORE_I7_45))
        assert p.cores_used == 4
        assert p.smt_pairs == 0

    def test_siblings_after_cores_full(self):
        p = place_threads(6, stock(CORE_I7_45))
        assert p.cores_used == 4
        assert p.smt_pairs == 2
        assert p.single_thread_cores == 2

    def test_fully_loaded(self):
        p = place_threads(8, stock(CORE_I7_45))
        assert p.smt_pairs == 4
        assert p.single_thread_cores == 0

    def test_excess_threads_clipped(self):
        p = place_threads(64, stock(CORE_I7_45))
        assert p.threads == 8

    def test_smt_disabled_config(self):
        p = place_threads(8, Configuration(CORE_I7_45, 4, 1, 2.66))
        assert p.threads == 4
        assert p.smt_pairs == 0

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            place_threads(0, stock(CORE_I7_45))


class TestAggregateThroughput:
    def test_two_cores_double_one(self):
        config = Configuration(CORE_I7_45, 4, 1, 2.66)
        b = _breakdown("swaptions", CORE_I7_45)
        one = aggregate_throughput(place_threads(1, config), b, config, 2.66e9)
        two = aggregate_throughput(place_threads(2, config), b, config, 2.66e9)
        assert two == pytest.approx(2 * one)

    def test_smt_pair_less_than_two_cores(self):
        config = stock(CORE_I7_45)
        b = _breakdown("canneal", CORE_I7_45)
        pair = aggregate_throughput(place_threads(2, Configuration(CORE_I7_45, 1, 2, 2.66)), b, config, 2.66e9)
        cores = aggregate_throughput(place_threads(2, Configuration(CORE_I7_45, 2, 1, 2.66)), b, config, 2.66e9)
        single = aggregate_throughput(place_threads(1, config), b, config, 2.66e9)
        assert single < pair < cores


class TestSyncInflation:
    def test_single_thread_free(self):
        assert sync_inflation(0.01, 1) == 1.0

    def test_grows_with_threads(self):
        assert sync_inflation(0.01, 8) == pytest.approx(1.07)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            sync_inflation(0.01, 0)
