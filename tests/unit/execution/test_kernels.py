"""Unit tests for compiled sweep kernels (:mod:`repro.execution.kernels`).

The integration-level byte-identity contract lives in
``tests/properties/test_kernel_equivalence.py``; these tests pin the
kernel machinery itself — compile/cache behaviour, serialisation
(kernels ship compactly, draws rematerialise), and the low-level
equivalence of one kernel replay against the scalar invocation loop it
compiles away.
"""

import pickle

import numpy as np
import pytest

from repro.execution.engine import ExecutionEngine
from repro.execution.kernels import (
    compile_pair,
    kernel_key,
    kernel_stats,
    run_pair,
)
from repro.execution.trace import sample_count, sample_counts
from repro.faults.injector import injected
from repro.faults.plan import FaultPlan
from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import stock
from repro.measurement.meter import meter_for
from repro.runtime.methodology import protocol_for
from repro.workloads.catalog import benchmark

CLEAN = FaultPlan()
CONFIG = stock(CORE_I7_45)


@pytest.fixture()
def engine():
    return ExecutionEngine()


@pytest.fixture()
def meter():
    return meter_for(CORE_I7_45)


class TestCompileAndCache:
    def test_compile_stores_and_second_call_hits(self, engine, meter):
        bench = benchmark("eclipse")
        protocol = protocol_for(bench)
        before = kernel_stats()
        kernel = compile_pair(engine, meter, bench, CONFIG, protocol, 4)
        assert kernel is not None
        assert kernel.invocations == 4
        key = kernel_key(bench, CONFIG, protocol, 4)
        assert engine.cached_kernel(key) is kernel
        again = compile_pair(engine, meter, bench, CONFIG, protocol, 4)
        assert again is kernel
        after = kernel_stats()
        assert after["compiles"] == before["compiles"] + 1
        assert after["cache_hits"] == before["cache_hits"] + 1
        assert after["cache_bytes"] > before["cache_bytes"]

    def test_distinct_invocation_counts_get_distinct_kernels(
        self, engine, meter
    ):
        bench = benchmark("mcf")
        protocol = protocol_for(bench)
        k4 = compile_pair(engine, meter, bench, CONFIG, protocol, 4)
        k5 = compile_pair(engine, meter, bench, CONFIG, protocol, 5)
        assert k4 is not k5
        assert len(k4.time_seeds) == 4
        assert len(k5.time_seeds) == 5


class TestSerialisation:
    def test_kernel_pickle_drops_draws_and_replays_identically(
        self, engine, meter
    ):
        bench = benchmark("eclipse")
        protocol = protocol_for(bench)
        kernel = compile_pair(engine, meter, bench, CONFIG, protocol, 3)
        times, powers = run_pair(kernel, engine, meter)
        assert kernel._draws is not None  # materialised by the replay
        restored = pickle.loads(pickle.dumps(kernel))
        assert restored._draws is None  # draws never travel
        times_2, powers_2 = run_pair(restored, engine, meter)
        assert times_2 == times
        assert powers_2 == powers

    def test_engine_pickle_drops_kernel_cache(self, engine, meter):
        bench = benchmark("mcf")
        compile_pair(engine, meter, bench, CONFIG, protocol_for(bench), 3)
        assert engine.kernel_snapshot()
        worker = pickle.loads(pickle.dumps(engine))
        assert worker.kernel_snapshot() == {}

    def test_preload_kernels_adopts_snapshot(self, engine, meter):
        bench = benchmark("eclipse")
        protocol = protocol_for(bench)
        kernel = compile_pair(engine, meter, bench, CONFIG, protocol, 3)
        other = ExecutionEngine()
        other.preload_kernels(engine.kernel_snapshot())
        key = kernel_key(bench, CONFIG, protocol, 3)
        assert other.cached_kernel(key) is kernel
        # compile on the preloaded engine answers from cache, not a build
        before = kernel_stats()["compiles"]
        assert compile_pair(other, meter, bench, CONFIG, protocol, 3) is kernel
        assert kernel_stats()["compiles"] == before


class TestScalarEquivalence:
    @pytest.mark.parametrize("name", ["eclipse", "mcf", "lusearch"])
    def test_replay_matches_scalar_invocation_loop(self, engine, meter, name):
        """One kernel replay == the loop it compiles: engine.execute +
        meter.measure per invocation, bit for bit."""
        bench = benchmark(name)
        protocol = protocol_for(bench)
        invocations = 5
        with injected(CLEAN):
            scalar_times, scalar_watts = [], []
            for index in range(invocations):
                execution = engine.execute(
                    bench, CONFIG, invocation=index, iteration=protocol.iteration
                )
                salt = f"{CONFIG.key}/{bench.name}/{index}"
                measurement = meter.measure(execution, run_salt=salt)
                scalar_times.append(execution.seconds.value)
                scalar_watts.append(measurement.average_watts)
            kernel = compile_pair(
                engine, meter, bench, CONFIG, protocol, invocations
            )
            times, watts = run_pair(kernel, engine, meter)
        assert times == scalar_times
        assert watts == scalar_watts


class TestSampleCounts:
    def test_vectorised_counts_match_scalar_rule(self):
        rng = np.random.default_rng(7)
        durations = np.concatenate([
            rng.uniform(0.005, 120.0, size=200),
            np.array([1e-9, 0.02, 39.99999, 40.0, 40.00001, 1e6]),
        ])
        counts = sample_counts(durations, 50.0, 2000)
        for duration, count in zip(durations, counts):
            assert int(count) == sample_count(float(duration), 50.0, 2000)

    def test_uncapped_and_cap_validation(self):
        durations = np.array([100.0, 0.001])
        assert sample_counts(durations, 50.0, None).tolist() == [5000, 1]
        with pytest.raises(ValueError):
            sample_counts(durations, 50.0, 0)
