"""Unit tests for power traces."""

import numpy as np
import pytest

from repro.core.quantities import Seconds
from repro.execution.trace import PowerTrace, trace_of
from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import stock
from repro.workloads.catalog import benchmark


def _two_piece() -> PowerTrace:
    return PowerTrace(
        duration=Seconds(10.0), boundaries=(4.0, 10.0), levels=(20.0, 50.0)
    )


class TestPowerAt:
    def test_piecewise_lookup(self):
        trace = _two_piece()
        assert trace.power_at(1.0).value == 20.0
        assert trace.power_at(5.0).value == 50.0

    def test_boundary_belongs_to_next_piece(self):
        assert _two_piece().power_at(4.0).value == 50.0

    def test_clamped_at_end(self):
        assert _two_piece().power_at(99.0).value == 50.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            _two_piece().power_at(-1.0)

    def test_vectorised_matches_scalar(self):
        trace = _two_piece()
        times = np.array([0.5, 3.9, 4.0, 9.9])
        vector = trace.powers_at(times)
        scalar = [trace.power_at(float(t)).value for t in times]
        assert vector.tolist() == scalar


class TestAverages:
    def test_time_weighted_average(self):
        assert _two_piece().average_power().value == pytest.approx(
            (20.0 * 4 + 50.0 * 6) / 10
        )


class TestSampling:
    def test_50hz_count(self):
        times = _two_piece().sample_times(50.0)
        assert len(times) == 500

    def test_max_samples_cap_preserves_span(self):
        times = _two_piece().sample_times(50.0, max_samples=100)
        assert len(times) == 100
        assert times[0] > 0.0
        assert times[-1] < 10.0
        assert times[-1] > 9.0  # still covers the whole run

    def test_capped_sampling_same_average(self):
        trace = _two_piece()
        full = trace.powers_at(trace.sample_times(50.0)).mean()
        capped = trace.powers_at(trace.sample_times(50.0, max_samples=200)).mean()
        assert capped == pytest.approx(full, rel=0.01)

    def test_short_run_one_sample_minimum(self):
        trace = PowerTrace(Seconds(0.001), (0.001,), (5.0,))
        assert len(trace.sample_times(50.0)) == 1

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            _two_piece().sample_times(0.0)


class TestTraceOf:
    def test_matches_execution(self, engine):
        ex = engine.ideal(benchmark("fluidanimate"), stock(CORE_I7_45))
        trace = trace_of(ex)
        assert trace.duration.value == pytest.approx(ex.seconds.value)
        assert trace.average_power().value == pytest.approx(
            ex.average_power.value, rel=1e-9
        )
        assert len(trace.levels) == len(ex.phases)


class TestValidation:
    def test_misaligned_pieces_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace(Seconds(1.0), (1.0,), (1.0, 2.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace(Seconds(1.0), (), ())
