"""Unit tests for the CPI model."""

import pytest

from repro.core.quantities import Hertz
from repro.execution.cpi import CpiBreakdown, issue_utilisation, thread_cpi
from repro.hardware.catalog import ATOM_45, CORE2DUO_65, CORE_I7_45, PENTIUM4_130
from repro.hardware.config import stock
from repro.native.compiler import Toolchain
from repro.workloads.catalog import benchmark


def _cpi(name: str, spec, ghz=None, **kwargs) -> CpiBreakdown:
    config = stock(spec)
    frequency = Hertz.from_ghz(ghz) if ghz else config.clock
    toolchain = Toolchain.JIT if benchmark(name).managed else Toolchain.ICC
    return thread_cpi(benchmark(name).character, config, toolchain, frequency, **kwargs)


class TestBreakdown:
    def test_total_sums_components(self):
        b = _cpi("mcf", CORE_I7_45)
        assert b.total == pytest.approx(b.base + b.dependency + b.branch + b.memory)

    def test_stall_fraction_in_unit_interval(self):
        b = _cpi("mcf", CORE_I7_45)
        assert 0.0 < b.stall_fraction < 1.0

    def test_memory_inflation(self):
        b = _cpi("mcf", CORE_I7_45)
        inflated = b.with_memory_inflation(1.5)
        assert inflated.memory == pytest.approx(b.memory * 1.5)
        assert inflated.base == b.base
        with pytest.raises(ValueError):
            b.with_memory_inflation(0.5)


class TestWorkloadSensitivity:
    def test_memory_bound_has_higher_cpi(self):
        assert _cpi("mcf", CORE_I7_45).total > _cpi("hmmer", CORE_I7_45).total

    def test_memory_stall_dominates_for_mcf(self):
        b = _cpi("mcf", CORE_I7_45)
        assert b.memory > b.base

    def test_compute_bound_dominated_by_base(self):
        b = _cpi("hmmer", CORE_I7_45)
        assert b.base > b.memory

    def test_branchy_code_pays_on_deep_pipeline(self):
        p4 = _cpi("sjeng", PENTIUM4_130)
        i7 = _cpi("sjeng", CORE_I7_45)
        assert p4.branch > i7.branch

    def test_displacement_factor_raises_memory_stalls(self):
        clean = _cpi("db", CORE_I7_45, mpki_factor=1.0)
        displaced = _cpi("db", CORE_I7_45, mpki_factor=1.75)
        assert displaced.memory > clean.memory
        assert displaced.mpki == pytest.approx(clean.mpki * 1.75)

    def test_llc_sharing_raises_memory_stalls(self):
        alone = _cpi("canneal", CORE_I7_45, llc_sharing_contexts=1)
        crowded = _cpi("canneal", CORE_I7_45, llc_sharing_contexts=8)
        assert crowded.memory > alone.memory


class TestMachineSensitivity:
    def test_in_order_pays_dependency_stalls(self):
        assert _cpi("hmmer", ATOM_45).dependency > 0.0
        assert _cpi("hmmer", CORE_I7_45).dependency == 0.0

    def test_netburst_worst_base_cpi(self):
        assert _cpi("hmmer", PENTIUM4_130).base > _cpi("hmmer", CORE_I7_45).base

    def test_higher_clock_more_memory_stall_cycles(self):
        slow = _cpi("mcf", CORE_I7_45, ghz=1.6)
        fast = _cpi("mcf", CORE_I7_45, ghz=2.66)
        assert fast.memory > slow.memory

    def test_big_cache_reduces_mpki(self):
        assert _cpi("astar", CORE_I7_45).mpki < _cpi("astar", ATOM_45).mpki

    def test_jit_code_penalty_on_netburst_only(self):
        """Workload Finding 2's mechanism: the JIT's code hurts the trace
        cache, so Java base CPI rises on NetBurst relative to Nehalem."""
        p4_java = _cpi("db", PENTIUM4_130)
        p4_native_like = thread_cpi(
            benchmark("db").character, stock(PENTIUM4_130), Toolchain.ICC,
            stock(PENTIUM4_130).clock,
        )
        assert p4_java.base > p4_native_like.base

    def test_nehalem_overlaps_more_misses_than_core(self):
        i7 = _cpi("mcf", CORE_I7_45, ghz=2.4)
        c2d = _cpi("mcf", CORE2DUO_65, ghz=2.4)
        assert c2d.memory > i7.memory


class TestUtilisation:
    def test_bounded(self):
        config = stock(CORE_I7_45)
        b = _cpi("hmmer", CORE_I7_45)
        assert 0.0 < issue_utilisation(b, config) <= 1.0

    def test_memory_bound_low_utilisation(self):
        config = stock(CORE_I7_45)
        assert issue_utilisation(_cpi("mcf", CORE_I7_45), config) < issue_utilisation(
            _cpi("hmmer", CORE_I7_45), config
        )
