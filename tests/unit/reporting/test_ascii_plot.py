"""Unit tests for the character scatter plots."""

import pytest

from repro.reporting.ascii_plot import Series, scatter


def _series(points=((1.0, 1.0), (2.0, 2.0)), marker="o", label="s"):
    return Series(label=label, points=points, marker=marker)


class TestSeries:
    def test_validation(self):
        with pytest.raises(ValueError):
            _series(marker="ab")
        with pytest.raises(ValueError):
            _series(points=())


class TestScatter:
    def test_contains_markers_and_legend(self):
        text = scatter([_series()])
        assert "o" in text
        assert "o=s" in text

    def test_axis_labels(self):
        text = scatter([_series()], x_label="perf", y_label="watts")
        assert "x: perf" in text
        assert "y: watts" in text

    def test_dimensions(self):
        text = scatter([_series()], width=40, height=10)
        # height rows + axis + x-tick line + caption + legend
        assert len(text.splitlines()) == 10 + 4

    def test_overlap_marker(self):
        a = _series(points=[(1.0, 1.0)], marker="a", label="a")
        b = _series(points=[(1.0, 1.0)], marker="b", label="b")
        assert "*" in scatter([a, b]).splitlines()[0] or "*" in scatter([a, b])

    def test_log_axes_require_positive(self):
        bad = _series(points=[(0.0, 1.0), (1.0, 2.0)])
        with pytest.raises(ValueError):
            scatter([bad], log_x=True)

    def test_log_scaling_spreads_decades(self):
        """On a log axis, 1->10 and 10->100 land equally far apart."""
        s = _series(points=[(1.0, 1.0), (10.0, 1.0), (100.0, 1.0)], marker="x")
        text = scatter([s], width=61, height=6, log_x=True)
        row = next(line for line in text.splitlines() if "x" in line)
        positions = [i for i, c in enumerate(row) if c == "x"]
        assert len(positions) == 3
        gap1 = positions[1] - positions[0]
        gap2 = positions[2] - positions[1]
        assert abs(gap1 - gap2) <= 1

    def test_explicit_range_clips_outsiders(self):
        s = _series(points=[(1.0, 1.0), (100.0, 100.0)])
        text = scatter([s], x_range=(0.0, 10.0), y_range=(0.0, 10.0))
        grid_rows = text.splitlines()[:-4]  # exclude axis/captions/legend
        assert sum(row.count("o") for row in grid_rows) == 1

    def test_degenerate_extent_handled(self):
        s = _series(points=[(5.0, 5.0)])
        assert "o" in scatter([s])

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            scatter([_series()], width=4, height=3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scatter([])


class TestFigureRenderers:
    def test_all_figures_render(self, study):
        from repro.reporting import figures

        for renderer in (
            figures.figure2,
            figures.figure3,
            figures.figure7c,
            figures.figure11,
            figures.figure12,
        ):
            text = renderer(study)
            assert len(text.splitlines()) > 10

    def test_figure2_has_identity_line(self, study):
        from repro.reporting import figures

        assert "power = TDP" in figures.figure2(study)
