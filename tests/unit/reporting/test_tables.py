"""Unit tests for text-table rendering."""

import pytest

from repro.experiments.base import ExperimentResult
from repro.reporting.tables import (
    format_cell,
    render_experiment,
    render_many,
    render_rows,
)


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_float_compact(self):
        assert format_cell(1.23456) == "1.23"

    def test_tuple_joined(self):
        assert format_cell((1, "a")) == "1; a"

    def test_string_passthrough(self):
        assert format_cell("i7 (45)") == "i7 (45)"


class TestRenderRows:
    def test_basic_table(self):
        text = render_rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert len(lines) == 4  # header, rule, two rows

    def test_missing_cells_dash(self):
        text = render_rows([{"a": 1}, {"b": 2}])
        assert "-" in text.splitlines()[2]

    def test_column_order_stable(self):
        text = render_rows([{"z": 1, "a": 2}])
        header = text.splitlines()[0].split()
        assert header == ["z", "a"]

    def test_explicit_columns(self):
        text = render_rows([{"a": 1, "b": 2}], columns=("b",))
        assert "a" not in text.splitlines()[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_rows([])


class TestRenderExperiment:
    def _result(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="figX",
            title="Test",
            paper_section="Fig. X",
            rows=({"a": 1},),
            notes=("a note",),
        )

    def test_includes_identity_and_notes(self):
        text = render_experiment(self._result())
        assert "Fig. X" in text
        assert "figX" in text
        assert "note: a note" in text

    def test_render_many_joins(self):
        text = render_many([self._result(), self._result()])
        assert text.count("Fig. X") == 2

    def test_experiment_result_helpers(self):
        result = ExperimentResult(
            experiment_id="t",
            title="t",
            paper_section="t",
            rows=({"k": "a", "v": 1}, {"k": "b", "v": 2}),
        )
        assert result.columns == ("k", "v")
        assert result.column("v") == [1, 2]
        assert result.row_for("k", "b")["v"] == 2
        with pytest.raises(KeyError):
            result.row_for("k", "missing")
