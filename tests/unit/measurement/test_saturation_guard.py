"""Boundary tests for the meter's saturation (clamp) telemetry guard.

The meter precomputes ``_sat_code_low`` / ``_sat_code_high`` — the code
band within :data:`~repro.measurement.meter._SAT_GUARD_CODES` of either
sensor rail — and a ``_sat_scan_watts`` gate that keeps the per-sample
clamp scan off the hot path for comfortably-powered runs.  These tests
pin the behaviour exactly at the band edges, one code either side, and on
both sides of the power gate.
"""

import numpy as np

from repro.core.quantities import Seconds, Watts
from repro.execution.engine import Execution, Phase
from repro.faults.injector import injected
from repro.hardware.events import EventCounts
from repro.hardware.turbo import TurboState
from repro.faults.plan import FaultPlan, FaultSpec
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.measurement.meter import PowerMeter
from repro.measurement.sensor import ADC_COUNTS
from repro.obs.metrics import default_registry
from repro.workloads.catalog import benchmark

CLEAN = FaultPlan()


def _execution(spec, watts, seconds=10.0):
    config = stock(spec)
    phase = Phase(
        name="serial",
        seconds=seconds,
        busy_cores=1.0,
        utilisation=1.0,
        frequency=config.spec.stock_clock,
        turbo=TurboState(steps=0, frequency=config.spec.stock_clock),
        power=Watts(watts),
    )
    return Execution(
        benchmark=benchmark("db"),
        config=config,
        seconds=Seconds(seconds),
        phases=(phase,),
        events=EventCounts(1e9, 1e9, 0.0, 0.0, 0.0),
    )


class TestClampBandBoundaries:
    def test_codes_on_and_inside_the_rails_count(self):
        meter = PowerMeter(CORE_I7_45)
        low, high = meter._sat_code_low, meter._sat_code_high
        assert 0.0 < low < high < float(ADC_COUNTS)
        on_the_edges = np.array([low, high])
        assert meter.clamped_sample_count(on_the_edges) == 2
        beyond = np.array([low - 1.0, high + 1.0, 0.0, float(ADC_COUNTS - 1)])
        assert meter.clamped_sample_count(beyond) == 4

    def test_one_code_inside_the_band_does_not_count(self):
        meter = PowerMeter(CORE_I7_45)
        comfortable = np.array(
            [meter._sat_code_low + 1.0, meter._sat_code_high - 1.0]
        )
        assert meter.clamped_sample_count(comfortable) == 0

    def test_rail_code_sits_in_the_clamp_band(self):
        # An injected saturation burst parks samples at _rail_code, which
        # must register as clamped or the telemetry would miss it.
        meter = PowerMeter(ATOM_45)
        assert meter.clamped_sample_count(
            np.array([float(meter._rail_code)])
        ) == 1


class TestScanGate:
    def _clamp_delta(self, meter, execution, salt):
        child = default_registry().get(
            "repro_meter_clamp_events_total"
        ).labels(machine=meter.spec.key)
        before = child.value
        meter.measure(execution, run_salt=salt)
        return child.value - before

    def test_low_power_run_skips_the_scan(self):
        meter = PowerMeter(CORE_I7_45)
        execution = _execution(CORE_I7_45, watts=40.0)
        assert max(
            p.power.value for p in execution.phases
        ) < meter._sat_scan_watts
        with injected(CLEAN):
            assert self._clamp_delta(meter, execution, "gate-low") == 0.0

    def test_power_past_the_gate_scans_and_counts(self):
        meter = PowerMeter(ATOM_45)
        # 80 W on the Atom's +/-5 A, 12 V rig rails every sample.
        execution = _execution(ATOM_45, watts=80.0)
        assert max(
            p.power.value for p in execution.phases
        ) >= meter._sat_scan_watts
        with injected(CLEAN):
            assert self._clamp_delta(meter, execution, "gate-high") > 0.0

    def test_injected_saturation_is_counted_even_at_low_power(self):
        # The gate must not hide an injected burst: a low-power run whose
        # samples were railed by the injector still reports clamp events.
        meter = PowerMeter(CORE_I7_45)
        execution = _execution(CORE_I7_45, watts=40.0)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="meter.saturation", probability=1.0, magnitude=0.3
                ),
            )
        )
        with injected(plan):
            delta = self._clamp_delta(meter, execution, "gate-burst")
        assert delta > 0.0
