"""Unit tests for the supply rail, the 50 Hz logger, and the power meter."""

import numpy as np
import pytest

from repro.core.quantities import Seconds, Watts
from repro.execution.trace import PowerTrace
from repro.hardware.catalog import ATOM_45, CORE_I7_45, PROCESSORS
from repro.hardware.config import stock
from repro.measurement.logger import DataLogger, SAMPLE_RATE_HZ
from repro.measurement.meter import PowerMeter, meter_for
from repro.measurement.sensor import HallEffectSensor
from repro.measurement.supply import ProcessorSupply, RAIL_VOLTS
from repro.workloads.catalog import benchmark


def _trace(watts=24.0, seconds=10.0) -> PowerTrace:
    return PowerTrace(Seconds(seconds), (seconds,), (watts,))


class TestSupply:
    def test_rail_is_12v(self):
        assert RAIL_VOLTS == 12.0

    def test_current_for_power(self):
        supply = ProcessorSupply("m")
        assert supply.current_for(Watts(24.0)).value == pytest.approx(2.0)

    def test_voltage_within_one_percent(self):
        """§2.5: measured voltage 'varying less than 1%'."""
        supply = ProcessorSupply("m")
        samples = supply.voltage_samples(1000, "salt")
        assert np.all(np.abs(samples - 12.0) <= 0.12 + 1e-9)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            ProcessorSupply("m").current_for(Watts(-1.0))

    def test_samples_deterministic(self):
        supply = ProcessorSupply("m")
        assert (
            supply.voltage_samples(10, "s") == supply.voltage_samples(10, "s")
        ).all()


class TestLogger:
    def _logger(self) -> DataLogger:
        return DataLogger(sensor=HallEffectSensor("log"), supply=ProcessorSupply("log"))

    def test_samples_at_50hz(self):
        logged = self._logger().log(_trace(seconds=4.0), run_salt="r")
        assert logged.rate_hz == SAMPLE_RATE_HZ
        assert logged.sample_count == 200

    def test_long_runs_capped(self):
        logged = self._logger().log(_trace(seconds=3600.0), run_salt="r")
        assert logged.sample_count == 2000

    def test_codes_in_adc_range(self):
        logged = self._logger().log(_trace(), run_salt="r")
        assert logged.codes.min() >= 0
        assert logged.codes.max() < 1024

    def test_run_salt_varies_noise(self):
        logger = self._logger()
        a = logger.log(_trace(), run_salt="a")
        b = logger.log(_trace(), run_salt="b")
        assert (a.codes != b.codes).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            DataLogger(HallEffectSensor("x"), ProcessorSupply("x"), rate_hz=0.0)

    def test_empty_record_error_names_the_likely_cause(self):
        from repro.measurement.logger import LoggedRun

        with pytest.raises(ValueError, match="dropout or"):
            LoggedRun(
                sample_times=np.array([]),
                codes=np.array([], dtype=np.int64),
                rate_hz=SAMPLE_RATE_HZ,
            )


class TestMeter:
    def test_measures_within_two_percent(self, engine):
        ex = engine.ideal(benchmark("db"), stock(CORE_I7_45))
        m = meter_for(CORE_I7_45).measure(ex)
        assert m.average_watts == pytest.approx(ex.average_power.value, rel=0.02)

    def test_atom_measured_accurately_despite_low_draw(self, engine):
        ex = engine.ideal(benchmark("db"), stock(ATOM_45))
        m = meter_for(ATOM_45).measure(ex)
        assert m.average_watts == pytest.approx(ex.average_power.value, rel=0.05)

    def test_meter_rejects_foreign_execution(self, engine):
        ex = engine.ideal(benchmark("db"), stock(ATOM_45))
        with pytest.raises(ValueError):
            meter_for(CORE_I7_45).measure(ex)

    def test_meter_cached_per_machine(self):
        assert meter_for(ATOM_45) is meter_for(ATOM_45)

    def test_every_machine_has_calibratable_meter(self):
        for spec in PROCESSORS:
            meter = meter_for(spec)
            assert meter.calibration.r_squared >= 0.999

    def test_measurement_energy(self, engine):
        ex = engine.ideal(benchmark("db"), stock(ATOM_45))
        m = meter_for(ATOM_45).measure(ex)
        assert m.energy_joules == pytest.approx(m.average_watts * m.seconds)

    def test_fresh_meter_equals_cached(self, engine):
        ex = engine.ideal(benchmark("db"), stock(ATOM_45))
        fresh = PowerMeter(ATOM_45).measure(ex)
        cached = meter_for(ATOM_45).measure(ex)
        assert fresh.average_watts == cached.average_watts


class TestSaturationTelemetry:
    """Clamp-event metrics: the per-sample scan is gated on true power."""

    def _execution(self, watts: float, seconds: float = 10.0):
        from repro.core.quantities import Hertz, Seconds
        from repro.execution.engine import Execution, Phase
        from repro.hardware.events import EventCounts
        from repro.hardware.turbo import TurboState

        config = stock(ATOM_45)
        phase = Phase(
            name="serial",
            seconds=seconds,
            busy_cores=1.0,
            utilisation=1.0,
            frequency=config.spec.stock_clock,
            turbo=TurboState(steps=0, frequency=config.spec.stock_clock),
            power=Watts(watts),
        )
        return Execution(
            benchmark=benchmark("db"),
            config=config,
            seconds=Seconds(seconds),
            phases=(phase,),
            events=EventCounts(1e9, 1e9, 0.0, 0.0, 0.0),
        )

    def test_saturated_run_counts_clamped_samples(self):
        from repro.obs.metrics import default_registry

        meter = PowerMeter(ATOM_45)
        clamp = default_registry().get("repro_meter_clamp_events_total")
        child = clamp.labels(machine=ATOM_45.key)
        before = child.value
        # The Atom rig uses the +/-5 A sensor on a 12 V rail: 80 W demands
        # ~6.7 A, past the rail, so every sample saturates.
        meter.measure(self._execution(watts=80.0))
        assert child.value - before >= 400  # 10 s at 50 Hz, most samples

    def test_comfortable_run_counts_nothing(self):
        from repro.obs.metrics import default_registry

        meter = PowerMeter(ATOM_45)
        clamp = default_registry().get("repro_meter_clamp_events_total")
        child = clamp.labels(machine=ATOM_45.key)
        before = child.value
        meter.measure(self._execution(watts=4.0))
        assert child.value == before
