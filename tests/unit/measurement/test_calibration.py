"""Unit tests for the sensor calibration procedure (§2.5)."""

import numpy as np
import pytest

from repro.measurement.calibration import (
    CalibrationError,
    REFERENCE_POINT_COUNT,
    REQUIRED_R_SQUARED,
    calibrate,
    reference_currents,
    sweep_for,
)
from repro.measurement.sensor import HallEffectSensor, sensor_for_processor


class TestReferenceSweep:
    def test_paper_sweep_shape(self):
        """'28 reference currents between 300mA and 3A'."""
        sweep = reference_currents()
        assert len(sweep) == REFERENCE_POINT_COUNT == 28
        assert sweep[0] == pytest.approx(0.3)
        assert sweep[-1] == pytest.approx(3.0)

    def test_evenly_spaced(self):
        sweep = reference_currents()
        gaps = np.diff(sweep)
        assert np.allclose(gaps, gaps[0])

    def test_30a_part_gets_wider_sweep(self):
        wide = sweep_for(sensor_for_processor("i7_45", 130.0))
        narrow = sweep_for(HallEffectSensor("x"))
        assert wide[-1] > narrow[-1]
        assert len(wide) == len(narrow) == 28

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            reference_currents(low=3.0, high=0.3)
        with pytest.raises(ValueError):
            reference_currents(count=1)


class TestCalibration:
    def test_meets_paper_quality(self):
        """'Each sensor has an R^2 value of 0.999 or better.'"""
        calibration = calibrate(HallEffectSensor("bench"))
        assert calibration.r_squared >= REQUIRED_R_SQUARED

    def test_30a_part_also_calibrates(self):
        calibration = calibrate(sensor_for_processor("i7_45", 130.0))
        assert calibration.r_squared >= REQUIRED_R_SQUARED

    def test_recovers_true_current(self):
        sensor = HallEffectSensor("bench")
        calibration = calibrate(sensor)
        codes = sensor.read_codes(np.array([1.7] * 200), seed_salt="verify")
        recovered = np.mean(
            [calibration.current_from_code(float(c)).value for c in codes]
        )
        assert recovered == pytest.approx(1.7, rel=0.02)

    def test_removes_device_gain_error(self):
        """Two devices with different gain errors agree after calibration."""
        readings = []
        for key in ("dev-a", "dev-b"):
            sensor = HallEffectSensor(key)
            calibration = calibrate(sensor)
            codes = sensor.read_codes(np.array([2.0] * 500), seed_salt="gain")
            readings.append(
                np.mean([calibration.current_from_code(float(c)).value for c in codes])
            )
        assert readings[0] == pytest.approx(readings[1], rel=0.01)

    def test_broken_sensor_fails_loudly(self):
        noisy = HallEffectSensor("broken", noise_fraction=0.2)
        with pytest.raises(CalibrationError):
            calibrate(noisy)

    def test_quality_check_can_be_waived(self):
        noisy = HallEffectSensor("broken", noise_fraction=0.2)
        calibration = calibrate(noisy, require_quality=False)
        assert calibration.r_squared < REQUIRED_R_SQUARED
