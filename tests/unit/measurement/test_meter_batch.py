"""Unit tests for the vectorised meter path.

``PowerMeter.measure_batch`` pushes every invocation of a pair through
the logger/sensor pipeline in one numpy pass.  Its contract is the same
bit-identity the plan cache promises: each batched measurement must
equal the standalone ``measure`` call float for float — the batch is a
layout change, not an approximation.
"""

import pytest

from repro.execution.engine import ExecutionEngine
from repro.faults.injector import injected
from repro.faults.plan import FaultPlan
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.measurement.meter import PowerMeter

CLEAN = FaultPlan()


@pytest.fixture(scope="module")
def engine():
    return ExecutionEngine()


def _runs(engine, spec, names=("mcf", "db"), invocations=3):
    """A small mixed batch: several invocations of several benchmarks."""
    from repro.workloads.catalog import benchmark

    executions, salts = [], []
    config = stock(spec)
    with injected(CLEAN):
        for name in names:
            bench = benchmark(name)
            for index in range(invocations):
                executions.append(
                    engine.execute(bench, config, invocation=index)
                )
                salts.append(f"{config.key}/{name}/{index}")
    return executions, salts


class TestBatchBitIdentity:
    @pytest.mark.parametrize("spec", (CORE_I7_45, ATOM_45), ids=lambda s: s.key)
    def test_batch_equals_standalone_measures(self, engine, spec):
        executions, salts = _runs(engine, spec)
        meter = PowerMeter(spec)
        with injected(CLEAN):
            standalone = [
                meter.measure(execution, run_salt=salt)
                for execution, salt in zip(executions, salts)
            ]
            batched = meter.measure_batch(executions, salts)
        assert [m.average_watts for m in batched] == [
            m.average_watts for m in standalone
        ]
        assert [m.sample_count for m in batched] == [
            m.sample_count for m in standalone
        ]
        assert [m.seconds for m in batched] == [m.seconds for m in standalone]

    def test_fault_injector_degrades_batch_to_per_run(self, engine):
        """Any armed plan — even an empty one — takes the per-run path
        (faults are per-invocation decisions), with identical results."""
        executions, salts = _runs(engine, ATOM_45, names=("mcf",))
        meter = PowerMeter(ATOM_45)
        with injected(CLEAN):
            clean = meter.measure_batch(executions, salts)
        with injected(FaultPlan()):
            armed = meter.measure_batch(executions, salts)
        assert [m.average_watts for m in armed] == [
            m.average_watts for m in clean
        ]


class TestBatchValidation:
    def test_misaligned_salts_rejected(self, engine):
        executions, salts = _runs(engine, ATOM_45, names=("mcf",))
        meter = PowerMeter(ATOM_45)
        with pytest.raises(ValueError, match="align"):
            meter.measure_batch(executions, salts[:-1])

    def test_foreign_machine_rejected(self, engine):
        executions, salts = _runs(engine, CORE_I7_45, names=("mcf",))
        meter = PowerMeter(ATOM_45)
        with injected(CLEAN), pytest.raises(ValueError, match="attached"):
            meter.measure_batch(executions, salts)
