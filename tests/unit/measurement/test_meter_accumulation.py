"""Exactness of the meter's code accumulation (satellite of the
vectorized-kernel PR).

``PowerMeter._average_watts`` reduces a run's integer ADC codes with an
int64 accumulator (``np.add.reduce``), so the sum — hence the mean and
the calibrated watts — is *provably exact*: equal to ``math.fsum`` (and
to exact rational arithmetic) at any magnitude the pipeline can produce,
and independent of sample order or segmentation.  These tests drive the
reduction with adversarial magnitudes far past the real logger's runs to
pin the exactness claim itself, not just the operating envelope.
"""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.measurement.meter import PowerMeter
from repro.measurement.sensor import ADC_COUNTS


def _exact_watts(meter: PowerMeter, codes: np.ndarray) -> float:
    """The reference answer via exact integer arithmetic: a Fraction mean
    correctly rounded to float64, then the affine calibration."""
    total = sum(int(code) for code in codes)
    mean_code = float(Fraction(total, len(codes)))
    fit = meter.calibration.fit
    return (mean_code - fit.intercept) / fit.slope * meter.supply.nominal.value


ADVERSARIAL = [
    # Alternating rails: the classic cancellation-adjacent pattern.
    np.tile(np.array([0, ADC_COUNTS - 1]), 500_000),
    # A million near-full-scale codes: magnitude stress for a naive
    # float32-style accumulator (int64 doesn't blink).
    np.full(1_000_001, ADC_COUNTS - 1),
    # One tiny code drowned in huge ones — the absorption case where
    # naive left-to-right float accumulation loses low-order bits first.
    np.concatenate([np.full(999_999, ADC_COUNTS - 1), np.array([1, 0])]),
    # Odd length + mixed codes: exercises the correctly-rounded division.
    np.arange(0, ADC_COUNTS).repeat(977)[:-3],
]


class TestExactAccumulation:
    @pytest.mark.parametrize("codes", ADVERSARIAL, ids=lambda a: f"n={len(a)}")
    def test_average_matches_exact_rational_mean(self, codes):
        meter = PowerMeter(CORE_I7_45)
        assert meter._average_watts(codes) == _exact_watts(meter, codes)

    @pytest.mark.parametrize("codes", ADVERSARIAL, ids=lambda a: f"n={len(a)}")
    def test_average_matches_fsum(self, codes):
        """fsum is the gold-standard float accumulator; the exact integer
        sum must agree with it bit for bit."""
        meter = PowerMeter(ATOM_45)
        fit = meter.calibration.fit
        mean_code = math.fsum(codes.tolist()) / len(codes)
        expected = (
            (mean_code - fit.intercept) / fit.slope * meter.supply.nominal.value
        )
        assert meter._average_watts(codes) == expected

    def test_order_and_segmentation_invariance(self):
        """An exact sum cannot depend on sample order — shuffle and
        segment-concatenate must agree to the last bit."""
        rng = np.random.default_rng(11)
        codes = rng.integers(0, ADC_COUNTS, size=100_003)
        shuffled = codes.copy()
        rng.shuffle(shuffled)
        meter = PowerMeter(CORE_I7_45)
        assert meter._average_watts(codes) == meter._average_watts(shuffled)

    def test_kernel_reduceat_agrees_with_scalar_reduce(self):
        """The compiled-kernel path's per-segment ``np.add.reduceat``
        must equal per-segment ``_average_watts`` on the same slices."""
        rng = np.random.default_rng(13)
        counts = rng.integers(1, 2001, size=40)
        codes = rng.integers(0, ADC_COUNTS, size=int(counts.sum()))
        offsets = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        meter = PowerMeter(CORE_I7_45)
        fit = meter.calibration.fit
        sums = np.add.reduceat(codes, offsets)
        means = sums / counts
        watts = (means - fit.intercept) / fit.slope * meter.supply.nominal.value
        for i, (offset, count) in enumerate(zip(offsets, counts)):
            segment = codes[offset:offset + count]
            assert watts[i] == meter._average_watts(segment)
