"""Unit tests for the whole-system clamp-meter contrast."""

import pytest

from repro.core.quantities import Watts
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.measurement.clamp import (
    ClampMeter,
    DESKTOP_PLATFORM,
    NETTOP_PLATFORM,
    SystemPlatform,
    chip_share_of_wall,
    platform_for,
)
from repro.workloads.catalog import benchmark


class TestPlatform:
    def test_wall_exceeds_chip(self):
        wall = DESKTOP_PLATFORM.wall_power(Watts(50.0))
        assert wall.value > 50.0 + DESKTOP_PLATFORM.board_watts

    def test_psu_efficiency_inflates(self):
        lossless = SystemPlatform(board_watts=45.0, psu_efficiency=1.0)
        lossy = SystemPlatform(board_watts=45.0, psu_efficiency=0.7)
        assert lossy.wall_power(Watts(50.0)).value > lossless.wall_power(
            Watts(50.0)
        ).value

    def test_platform_selection(self):
        assert platform_for("atom_45") is NETTOP_PLATFORM
        assert platform_for("i7_45") is DESKTOP_PLATFORM

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemPlatform(board_watts=-1.0)
        with pytest.raises(ValueError):
            SystemPlatform(board_watts=10.0, psu_efficiency=0.0)
        with pytest.raises(ValueError):
            DESKTOP_PLATFORM.wall_power(Watts(-1.0))


class TestChipShare:
    def test_atom_is_a_sliver_of_the_wall(self, engine):
        execution = engine.ideal(benchmark("xalan"), stock(ATOM_45))
        assert chip_share_of_wall(execution) < 0.15

    def test_i7_is_a_large_share(self, engine):
        execution = engine.ideal(benchmark("xalan"), stock(CORE_I7_45))
        assert chip_share_of_wall(execution) > 0.3


class TestClampMeter:
    def test_reads_near_truth(self, engine):
        execution = engine.ideal(benchmark("xalan"), stock(CORE_I7_45))
        platform = platform_for("i7_45")
        truth = platform.wall_power(execution.average_power).value
        reading = ClampMeter("bench").measure_wall(execution).value
        assert reading == pytest.approx(truth, rel=0.08)

    def test_deterministic_per_salt(self, engine):
        execution = engine.ideal(benchmark("xalan"), stock(CORE_I7_45))
        meter = ClampMeter("bench")
        assert meter.measure_wall(execution, "a").value == meter.measure_wall(
            execution, "a"
        ).value
        assert meter.measure_wall(execution, "a").value != meter.measure_wall(
            execution, "b"
        ).value
