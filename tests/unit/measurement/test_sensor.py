"""Unit tests for the ACS714 Hall-effect sensor model (§2.5)."""

import numpy as np
import pytest

from repro.core.quantities import Amperes, Volts
from repro.measurement.sensor import (
    ADC_COUNTS,
    HallEffectSensor,
    MV_PER_AMP_30A,
    MV_PER_AMP_5A,
    ZERO_CURRENT_VOLTS,
    sensor_for_processor,
)


class TestTransferFunction:
    def test_zero_current_near_midpoint(self):
        sensor = HallEffectSensor("test", noise_fraction=0.0)
        out = sensor.output_volts(Amperes(0.0))
        assert out.value == pytest.approx(ZERO_CURRENT_VOLTS, abs=0.02)

    def test_slope_near_185mv_per_amp(self):
        sensor = HallEffectSensor("test", noise_fraction=0.0)
        v1 = sensor.output_volts(Amperes(1.0)).value
        v2 = sensor.output_volts(Amperes(2.0)).value
        assert (v2 - v1) * 1000 == pytest.approx(MV_PER_AMP_5A, rel=0.02)

    def test_saturation_beyond_range(self):
        sensor = HallEffectSensor("test", noise_fraction=0.0)
        at_limit = sensor.output_volts(Amperes(5.0)).value
        beyond = sensor.output_volts(Amperes(50.0)).value
        assert beyond == pytest.approx(at_limit)

    def test_bidirectional(self):
        sensor = HallEffectSensor("test", noise_fraction=0.0)
        assert sensor.output_volts(Amperes(-1.0)).value < ZERO_CURRENT_VOLTS

    def test_devices_have_stable_individual_errors(self):
        a1 = HallEffectSensor("a")
        a2 = HallEffectSensor("a")
        b = HallEffectSensor("b")
        current = Amperes(2.0)
        assert a1.output_volts(current).value == a2.output_volts(current).value
        assert a1.output_volts(current).value != b.output_volts(current).value


class TestDigitisation:
    def test_code_range(self):
        sensor = HallEffectSensor("test")
        assert sensor.digitise(Volts(0.0)) == 0
        assert sensor.digitise(Volts(5.0)) == ADC_COUNTS - 1
        assert 0 <= sensor.digitise(Volts(2.5)) < ADC_COUNTS

    def test_read_codes_deterministic(self):
        sensor = HallEffectSensor("test")
        currents = np.linspace(0.5, 3.0, 20)
        a = sensor.read_codes(currents, seed_salt="x")
        b = sensor.read_codes(currents, seed_salt="x")
        assert (a == b).all()

    def test_read_codes_salt_varies_noise(self):
        sensor = HallEffectSensor("test")
        currents = np.linspace(0.5, 3.0, 50)
        a = sensor.read_codes(currents, seed_salt="x")
        b = sensor.read_codes(currents, seed_salt="y")
        assert (a != b).any()

    def test_codes_monotone_in_current_on_average(self):
        sensor = HallEffectSensor("test")
        codes = sensor.read_codes(np.linspace(0.3, 4.5, 200), seed_salt="mono")
        fit = np.polyfit(np.arange(len(codes)), codes.astype(float), 1)
        assert fit[0] > 0

    def test_vectorised_matches_scalar_path(self):
        sensor = HallEffectSensor("test", noise_fraction=0.0)
        currents = np.array([0.5, 1.5, 2.5])
        codes = sensor.read_codes(currents, seed_salt="zero-noise")
        scalar = [
            sensor.digitise(sensor.output_volts(Amperes(float(c))))
            for c in currents
        ]
        assert codes.tolist() == scalar


class TestSensorSelection:
    def test_low_power_machine_gets_5a_part(self):
        sensor = sensor_for_processor("atom_45", max_power_watts=4.0)
        assert sensor.range_amps == 5.0
        assert sensor.mv_per_amp == MV_PER_AMP_5A

    def test_high_power_machine_gets_30a_part(self):
        """§2.5: 'The sensor on i7 (45) ... accepts currents with
        magnitudes up to 30A.'"""
        sensor = sensor_for_processor("i7_45", max_power_watts=130.0)
        assert sensor.range_amps == 30.0
        assert sensor.mv_per_amp == MV_PER_AMP_30A

    def test_invalid_power_rejected(self):
        with pytest.raises(ValueError):
            sensor_for_processor("x", max_power_watts=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HallEffectSensor("x", range_amps=0.0)
