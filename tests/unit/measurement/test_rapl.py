"""Unit tests for the RAPL-style energy counter."""

import pytest

from repro.core.quantities import Seconds
from repro.execution.trace import PowerTrace
from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import stock
from repro.measurement.rapl import (
    COUNTER_BITS,
    ENERGY_UNIT_UJ,
    RaplReader,
    SimulatedRaplDomain,
    rapl_power,
)
from repro.workloads.catalog import benchmark


def _domain(watts=50.0, seconds=10.0) -> SimulatedRaplDomain:
    return SimulatedRaplDomain(
        trace=PowerTrace(Seconds(seconds), (seconds,), (watts,))
    )


class TestCounter:
    def test_monotone_before_wrap(self):
        domain = _domain()
        values = [domain.counter_at(t) for t in (0.0, 1.0, 2.0, 5.0)]
        assert values == sorted(values)
        assert values[0] == 0

    def test_counter_tracks_energy(self):
        domain = _domain(watts=50.0)
        units = domain.counter_at(2.0)
        joules = units * ENERGY_UNIT_UJ / 1e6
        assert joules == pytest.approx(100.0, rel=1e-3)

    def test_register_width_wraps(self):
        # 60 W for an hour overflows the 32-bit unit counter.
        domain = _domain(watts=60.0, seconds=3600.0)
        assert domain.counter_at(3600.0) < (1 << COUNTER_BITS)

    def test_wrap_period_realistic(self):
        """At ~60 W the 32-bit counter wraps in roughly 15-20 minutes."""
        domain = _domain(watts=60.0, seconds=3600.0)
        assert 600 < domain.wrap_seconds_at < 1500

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            _domain().counter_at(-1.0)


class TestReader:
    def test_recovers_constant_power(self):
        power = RaplReader().average_power(_domain(watts=42.0))
        assert power.value == pytest.approx(42.0, rel=1e-3)

    def test_recovers_two_phase_average(self):
        trace = PowerTrace(Seconds(10.0), (4.0, 10.0), (20.0, 60.0))
        domain = SimulatedRaplDomain(trace=trace)
        power = RaplReader().average_power(domain)
        assert power.value == pytest.approx(trace.average_power().value, rel=1e-3)

    def test_handles_single_wrap(self):
        # Long enough that the counter wraps mid-run; sampling is fast
        # enough that each wrap is caught.
        domain = _domain(watts=60.0, seconds=2000.0)
        power = RaplReader(sample_interval_s=60.0).average_power(domain)
        assert power.value == pytest.approx(60.0, rel=1e-3)

    def test_too_fast_sampling_rejected(self):
        with pytest.raises(ValueError):
            RaplReader(sample_interval_s=1e-5)


class TestAgainstEngine:
    def test_matches_true_average_power(self, engine):
        execution = engine.ideal(benchmark("xalan"), stock(CORE_I7_45))
        power = rapl_power(execution)
        assert power.value == pytest.approx(
            execution.average_power.value, rel=0.002
        )

    def test_rapl_and_hall_agree(self, engine):
        from repro.measurement.meter import meter_for

        execution = engine.ideal(benchmark("fluidanimate"), stock(CORE_I7_45))
        hall = meter_for(CORE_I7_45).measure(execution).average_watts
        rapl = rapl_power(execution).value
        assert hall == pytest.approx(rapl, rel=0.04)
