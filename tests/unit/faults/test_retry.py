"""Unit tests for the retry policy."""

import math

import pytest

from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 3
        assert policy.outlier_threshold is None
        assert DEFAULT_RETRY_POLICY == policy

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_s": -0.1},
            {"backoff_s": math.inf},
            {"backoff_factor": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.5},
            {"timeout_budget_s": 0.0},
            {"outlier_threshold": 0.0},
            {"outlier_threshold": -3.5},
            {"max_remeasures": -1},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestDelay:
    def test_zero_backoff_never_sleeps(self):
        policy = RetryPolicy(backoff_s=0.0, jitter=0.25)
        assert policy.delay_for(1, "site") == 0.0
        assert policy.delay_for(7, "site") == 0.0

    def test_exponential_and_capped_without_jitter(self):
        policy = RetryPolicy(
            backoff_s=0.5, backoff_factor=2.0, max_backoff_s=2.0, jitter=0.0
        )
        assert policy.delay_for(1, "s") == 0.5
        assert policy.delay_for(2, "s") == 1.0
        assert policy.delay_for(3, "s") == 2.0
        assert policy.delay_for(4, "s") == 2.0  # capped

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_s=1.0, max_backoff_s=8.0, jitter=0.25)
        first = policy.delay_for(2, "siteA")
        assert first == policy.delay_for(2, "siteA")
        base = 2.0
        assert base * 0.75 <= first <= base * 1.25
        # Different sites (and attempts) draw independent jitter.
        assert first != policy.delay_for(2, "siteB")
        assert first != policy.delay_for(3, "siteA")
