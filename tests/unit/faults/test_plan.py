"""Unit tests for the declarative fault-plan layer."""

import math

import pytest

from repro.faults.plan import (
    COORDINATOR_KINDS,
    COORDINATOR_PHASES,
    CORRUPTING_KINDS,
    DEFAULT_MAGNITUDES,
    FAIL_STOP_KINDS,
    KNOWN_KINDS,
    PROCESS_KINDS,
    FaultPlan,
    FaultSpec,
    coordinator_crash_plan,
    demo_plan,
    fail_stop_plan,
    plan_from_arg,
    worker_chaos_plan,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="sensor.explodes", probability=0.1)

    @pytest.mark.parametrize("p", [-0.1, 1.1, 2.0])
    def test_probability_bounds(self, p):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind="invocation.crash", probability=p)

    @pytest.mark.parametrize("magnitude", [math.nan, math.inf, -math.inf])
    def test_magnitude_must_be_finite(self, magnitude):
        with pytest.raises(ValueError, match="finite"):
            FaultSpec(kind="sensor.drift", probability=0.1, magnitude=magnitude)

    def test_severity_defaults_per_kind(self):
        for kind in KNOWN_KINDS:
            spec = FaultSpec(kind=kind, probability=0.5)
            assert spec.severity == DEFAULT_MAGNITUDES.get(kind, 0.0)

    def test_magnitude_overrides_severity(self):
        spec = FaultSpec(kind="sensor.drift", probability=0.5, magnitude=123.0)
        assert spec.severity == 123.0

    def test_scope_matching(self):
        spec = FaultSpec(kind="invocation.crash", probability=1.0, scope="i7_45*")
        assert spec.applies_to("i7_45-stock/db/0")
        assert not spec.applies_to("atom_45-stock/db/0")
        benchmark_scoped = FaultSpec(
            kind="invocation.crash", probability=1.0, scope="*/db/*"
        )
        assert benchmark_scoped.applies_to("i7_45-stock/db/3")
        assert not benchmark_scoped.applies_to("i7_45-stock/mcf/3")

    def test_default_scope_matches_everything(self):
        spec = FaultSpec(kind="logger.gap", probability=0.5)
        assert spec.applies_to("anything/at/all")


class TestFaultPlan:
    def test_specs_for_stage(self):
        plan = demo_plan(0.1)
        assert {s.kind for s in plan.specs_for_stage("invocation")} == {
            "invocation.crash",
            "invocation.hang",
        }
        assert {s.kind for s in plan.specs_for_stage("logger")} == {
            "logger.disconnect",
            "logger.gap",
        }
        assert {s.kind for s in plan.specs_for_stage("sensor")} == {
            "sensor.glitch",
            "sensor.drift",
            "sensor.stuck",
        }
        assert {s.kind for s in plan.specs_for_stage("meter")} == {
            "meter.saturation"
        }

    def test_fail_stop_only(self):
        assert fail_stop_plan().fail_stop_only
        assert FaultPlan().fail_stop_only
        assert not demo_plan().fail_stop_only

    def test_taxonomy_is_partitioned(self):
        families = (
            FAIL_STOP_KINDS,
            CORRUPTING_KINDS,
            PROCESS_KINDS,
            COORDINATOR_KINDS,
        )
        for i, a in enumerate(families):
            for b in families[i + 1:]:
                assert set(a).isdisjoint(b)
        assert set(KNOWN_KINDS) == set().union(*map(set, families))

    def test_worker_kinds_are_fail_stop_safe(self):
        """Process-level faults never corrupt a completed sample — the
        requeued chunk re-measures from scratch — so a worker-kind plan
        qualifies for per-request service use."""
        assert worker_chaos_plan().fail_stop_only
        mixed = FaultPlan(
            specs=(
                FaultSpec(kind="worker.crash", probability=0.5),
                FaultSpec(kind="sensor.drift", probability=0.5),
            )
        )
        assert not mixed.fail_stop_only

    def test_chaos_plan_kills_first_dispatch_only(self):
        plan = worker_chaos_plan()
        (spec,) = plan.specs
        assert spec.kind == "worker.crash"
        assert spec.probability == 1.0
        assert spec.applies_to("fleet/0/0")
        assert spec.applies_to("fleet/7/0")
        assert not spec.applies_to("fleet/0/1")
        assert plan_from_arg("chaos") == plan

    def test_dict_round_trip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="invocation.crash", probability=0.02),
                FaultSpec(
                    kind="sensor.drift",
                    probability=0.1,
                    scope="i7_45*",
                    magnitude=80.0,
                ),
            ),
            seed="round-trip",
        )
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    def test_json_round_trip(self, tmp_path):
        plan = demo_plan(0.07, seed="json")
        path = plan.to_json(tmp_path / "plan.json")
        assert FaultPlan.from_json(path) == plan

    def test_malformed_dict_rejected(self):
        with pytest.raises(ValueError, match="malformed fault plan"):
            FaultPlan.from_dict({"faults": [{"probability": 0.1}]})

    def test_plan_from_arg(self, tmp_path):
        assert plan_from_arg("demo") == demo_plan()
        assert plan_from_arg("ci") == fail_stop_plan()
        path = demo_plan(0.5, seed="file").to_json(tmp_path / "p.json")
        assert plan_from_arg(str(path)) == demo_plan(0.5, seed="file")

    def test_canned_plans_cover_the_taxonomy(self):
        # demo is armable on a live server, so it excludes the kinds
        # that would kill (or wedge) the serving process itself.
        assert {s.kind for s in demo_plan().specs} == (
            set(KNOWN_KINDS) - set(COORDINATOR_KINDS)
        )
        assert {s.kind for s in fail_stop_plan().specs} == set(FAIL_STOP_KINDS)

    def test_coordinator_kinds_are_not_fail_stop_safe(self):
        """A per-request plan must never be able to kill the coordinator:
        retrying a request whose plan crashed the server cannot reproduce
        fault-free bytes (the server is gone)."""
        crash = FaultPlan(
            specs=(FaultSpec(kind="coordinator.crash", probability=0.1),)
        )
        stall = FaultPlan(
            specs=(FaultSpec(kind="coordinator.stall", probability=0.1),)
        )
        assert not crash.fail_stop_only
        assert not stall.fail_stop_only

    @pytest.mark.parametrize("phase", COORDINATOR_PHASES)
    def test_coordinator_crash_plan_scopes_one_phase(self, phase):
        plan = coordinator_crash_plan(phase)
        (spec,) = plan.specs
        assert spec.kind == "coordinator.crash"
        assert spec.probability == 1.0
        assert spec.applies_to(f"coordinator/{phase}/0")
        assert spec.applies_to(f"coordinator/{phase}/7")
        for other in COORDINATOR_PHASES:
            if other != phase:
                assert not spec.applies_to(f"coordinator/{other}/0")

    def test_coordinator_crash_plan_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown coordinator phase"):
            coordinator_crash_plan("teardown")

    def test_coordinator_stall_has_bounded_default_magnitude(self):
        spec = FaultSpec(kind="coordinator.stall", probability=1.0)
        assert 0.0 < spec.severity <= 1.0
