"""Unit tests for the ambient fault injector."""

import numpy as np
import pytest

from repro.faults.errors import (
    InvocationCrash,
    InvocationTimeout,
    LoggerDropout,
    MeterSaturation,
)
from repro.faults.injector import (
    FaultInjector,
    active,
    attempt_scope,
    current_attempt,
    injected,
    install,
    shielded,
    uninstall,
)
from repro.faults.plan import FaultPlan, FaultSpec


def _crash_plan(probability, seed="unit", scope="*"):
    return FaultPlan(
        specs=(
            FaultSpec(
                kind="invocation.crash", probability=probability, scope=scope
            ),
        ),
        seed=seed,
    )


def _crashing_sites(injector, sites):
    crashed = set()
    for site in sites:
        try:
            injector.check_invocation(site)
        except InvocationCrash:
            crashed.add(site)
    return crashed


SITES = [f"i7_45-stock/db/{i}" for i in range(64)]


class TestDeterminism:
    def test_same_plan_same_failures(self):
        a = _crashing_sites(FaultInjector(_crash_plan(0.5)), SITES)
        b = _crashing_sites(FaultInjector(_crash_plan(0.5)), SITES)
        assert a == b
        assert 0 < len(a) < len(SITES)

    def test_seed_rerolls_every_decision(self):
        a = _crashing_sites(FaultInjector(_crash_plan(0.5, seed="a")), SITES)
        b = _crashing_sites(FaultInjector(_crash_plan(0.5, seed="b")), SITES)
        assert a != b

    def test_attempt_rerolls_the_dice(self):
        injector = FaultInjector(_crash_plan(0.5))
        first = _crashing_sites(injector, SITES)
        with attempt_scope(1):
            second = _crashing_sites(injector, SITES)
        assert first != second

    def test_probability_extremes(self):
        never = FaultInjector(_crash_plan(0.0))
        assert not _crashing_sites(never, SITES)
        always = FaultInjector(_crash_plan(1.0))
        assert _crashing_sites(always, SITES) == set(SITES)

    def test_scope_restricts_fire_sites(self):
        injector = FaultInjector(_crash_plan(1.0, scope="i7_45*"))
        with pytest.raises(InvocationCrash):
            injector.check_invocation("i7_45-stock/db/0")
        injector.check_invocation("atom_45-stock/db/0")  # out of scope: no-op


class TestInvocationFaults:
    def test_hang_raises_timeout_with_simulated_elapsed(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="invocation.hang", probability=1.0, magnitude=120.0
                ),
            )
        )
        with pytest.raises(InvocationTimeout) as excinfo:
            FaultInjector(plan).check_invocation("site/x/0")
        assert excinfo.value.elapsed_s == 120.0
        assert excinfo.value.site == "site/x/0"


class TestSensorFaults:
    def _codes(self):
        return np.arange(100, 200, dtype=np.int64)

    def test_stuck_freezes_the_stream(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="sensor.stuck", probability=1.0),)
        )
        out = FaultInjector(plan).corrupt_sensor_codes("s", self._codes(), 1023)
        assert np.all(out == out[0])

    def test_glitch_spikes_to_the_rails(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="sensor.glitch", probability=1.0, magnitude=0.1),
            )
        )
        codes = self._codes()
        out = FaultInjector(plan).corrupt_sensor_codes("s", codes, 1023)
        changed = np.nonzero(out != codes)[0]
        assert 0 < len(changed) <= 10
        assert set(out[changed]) <= {0, 1023}

    def test_drift_ramps_and_clips(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="sensor.drift", probability=1.0, magnitude=50.0),
            )
        )
        codes = self._codes()
        out = FaultInjector(plan).corrupt_sensor_codes("s", codes, 1023)
        assert out[0] == codes[0]
        assert out[-1] == codes[-1] + 50
        assert np.all(out <= 1023)

    def test_untriggered_stream_passes_through_unchanged(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="sensor.stuck", probability=0.0),)
        )
        codes = self._codes()
        out = FaultInjector(plan).corrupt_sensor_codes("s", codes, 1023)
        assert out is codes


class TestLoggerFaults:
    def _run(self):
        times = np.linspace(0.0, 2.0, 100)
        codes = np.arange(100, dtype=np.int64)
        return times, codes

    def test_gap_drops_one_contiguous_window(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="logger.gap", probability=1.0, magnitude=0.25),
            )
        )
        times, codes = self._run()
        out_t, out_c = FaultInjector(plan).filter_logged_samples(
            "s", times, codes
        )
        assert len(out_c) == 75 and len(out_t) == 75
        # The survivors are the original stream minus one contiguous block.
        missing = np.setdiff1d(codes, out_c)
        assert len(missing) == 25
        assert np.all(np.diff(missing) == 1)

    def test_disconnect_raises_dropout(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="logger.disconnect", probability=1.0),)
        )
        with pytest.raises(LoggerDropout, match="disconnect"):
            FaultInjector(plan).filter_logged_samples("s", *self._run())

    def test_total_gap_raises_instead_of_emptying(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="logger.gap", probability=1.0, magnitude=1.0),
            )
        )
        with pytest.raises(LoggerDropout, match="every sample"):
            FaultInjector(plan).filter_logged_samples("s", *self._run())


class TestMeterFaults:
    def test_saturation_rails_a_burst(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="meter.saturation", probability=1.0, magnitude=0.3
                ),
            )
        )
        codes = np.full(100, 150, dtype=np.int64)
        out = FaultInjector(plan).saturate_meter_codes("s", codes, 950)
        railed = np.nonzero(out == 950)[0]
        assert len(railed) == 30
        assert np.all(np.diff(railed) == 1)
        assert np.all(out[out != 950] == 150)

    def test_total_saturation_raises(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="meter.saturation", probability=1.0, magnitude=1.0
                ),
            )
        )
        with pytest.raises(MeterSaturation):
            FaultInjector(plan).saturate_meter_codes(
                "s", np.full(10, 150, dtype=np.int64), 950
            )


class TestAmbientInstallation:
    def test_install_uninstall(self):
        try:
            injector = install(_crash_plan(1.0))
            assert active() is injector
        finally:
            uninstall()
        assert active() is None

    def test_injected_restores_previous(self):
        with injected(_crash_plan(1.0, seed="outer")) as outer:
            with injected(_crash_plan(1.0, seed="inner")) as inner:
                assert active() is inner
            assert active() is outer

    def test_shielded_suppresses_the_active_injector(self):
        with injected(_crash_plan(1.0)) as injector:
            assert active() is injector
            with shielded():
                assert active() is None
            assert active() is injector

    def test_attempt_scope_nests(self):
        assert current_attempt() == 0
        with attempt_scope(2):
            assert current_attempt() == 2
            with attempt_scope(5):
                assert current_attempt() == 5
            assert current_attempt() == 2
        assert current_attempt() == 0
