"""Unit tests for the fleet supervisor's liveness and requeue logic.

Everything here runs without real worker processes: the supervisor takes
an injectable monotonic clock (the :mod:`repro.service.ratelimit`
pattern) and a ``process_factory`` seam, so liveness deadlines are
crossed by stepping a fake clock instead of sleeping, and "workers" are
inert stand-ins whose aliveness the tests script directly.
"""

from collections import deque

import pytest

from repro.core.executor import ChunkResult
from repro.faults.injector import FaultInjector, attempt_scope
from repro.faults.plan import FaultPlan, FaultSpec, worker_chaos_plan
from repro.service.fleet import (
    FleetSupervisor,
    FleetUnavailable,
    _crash_loop_result,
    _worker_site,
)


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeProcess:
    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.alive = True
        self.killed = False
        self.exitcode = None

    def is_alive(self) -> bool:
        return self.alive

    def kill(self) -> None:
        self.killed = True
        self.alive = False

    def join(self, timeout=None) -> None:
        pass


class FakeQueue:
    def __init__(self) -> None:
        self.items: list = []

    def put(self, item) -> None:
        self.items.append(item)


def _supervisor(workers=2, **kwargs) -> tuple[FleetSupervisor, FakeClock, list]:
    clock = FakeClock()
    spawned: list[FakeProcess] = []
    logs: list[str] = []

    def factory(worker_id: int, tasks) -> FakeProcess:
        process = FakeProcess(pid=1000 + worker_id)
        spawned.append(process)
        return process

    supervisor = FleetSupervisor(
        setup=object.__new__(type("S", (), {})),  # never pickled: fakes only
        workers=workers,
        clock=clock,
        process_factory=lambda worker_id, tasks: factory(worker_id, tasks),
        log=logs.append,
        **kwargs,
    )
    # Replace the real multiprocessing task queues with inert fakes so
    # dispatches are observable and nothing leaks OS resources.
    for handle in supervisor._workers:
        handle.tasks = FakeQueue()
    supervisor._logs = logs
    return supervisor, clock, spawned


class TestSpawnAndSnapshot:
    def test_spawns_requested_workers(self):
        supervisor, _, spawned = _supervisor(workers=3)
        assert len(spawned) == 3
        snapshot = supervisor.snapshot()
        assert snapshot["size"] == 3 and snapshot["live"] == 3
        assert [w["pid"] for w in snapshot["workers"]] == [1000, 1001, 1002]
        assert all(w["state"] == "idle" for w in snapshot["workers"])
        supervisor.close()

    def test_snapshot_reports_heartbeat_age(self):
        supervisor, clock, _ = _supervisor(workers=1)
        clock.advance(0.4)
        (worker,) = supervisor.snapshot()["workers"]
        assert worker["heartbeat_age_s"] == pytest.approx(0.4, abs=1e-6)
        supervisor.close()

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            _supervisor(workers=0)
        with pytest.raises(ValueError):
            _supervisor(heartbeat_s=0.0)
        with pytest.raises(ValueError):
            _supervisor(liveness_misses=0)


class TestLiveness:
    def test_missed_beats_mark_worker_dead_and_requeue(self):
        supervisor, clock, spawned = _supervisor(
            workers=2, heartbeat_s=0.25, liveness_misses=4
        )
        handle = supervisor._workers[0]
        chunk = ((None, None, 0),)
        handle.current = (1, 0, 0, chunk)
        handle.state = "busy"
        todo: deque = deque()
        # Just inside the deadline: nothing happens.
        clock.advance(0.9)
        supervisor._reap(clock(), todo, {}, generation=1, chunks=[chunk])
        assert handle.state == "busy" and not todo
        # Past heartbeat_s * liveness_misses: killed, requeued, respawned.
        clock.advance(0.2)
        supervisor._workers[1].last_beat = clock()  # worker 1 stays live
        supervisor._reap(clock(), todo, {}, generation=1, chunks=[chunk])
        assert spawned[0].killed
        assert handle.state == "dead"
        assert list(todo) == [(1, 0, 1, chunk)]  # attempt bumped
        assert supervisor.requeues == 1
        assert supervisor.restarts == 1
        assert len(spawned) == 3  # replacement spawned
        assert any("missed 4 heartbeats" in line for line in supervisor._logs)
        supervisor.close()

    def test_reaped_process_detected_before_deadline(self):
        """A worker whose process already exited is dead immediately —
        no need to wait out the heartbeat deadline."""
        supervisor, clock, spawned = _supervisor(workers=2)
        handle = supervisor._workers[1]
        spawned[1].alive = False
        spawned[1].exitcode = 73
        chunk = ((None, None, 3),)
        handle.current = (1, 2, 0, chunk)
        handle.state = "busy"
        todo: deque = deque()
        supervisor._reap(clock(), todo, {}, generation=1, chunks=[chunk])
        assert handle.state == "dead"
        assert not spawned[1].killed  # it was already gone
        assert list(todo) == [(1, 2, 1, chunk)]
        assert any("code 73" in line for line in supervisor._logs)
        supervisor.close()

    def test_beat_resets_the_deadline(self):
        supervisor, clock, _ = _supervisor(workers=1)
        handle = supervisor._workers[0]
        handle.state = "busy"
        handle.current = (1, 0, 0, ())
        clock.advance(0.9)
        handle.last_beat = clock()  # a beat arrives late but in time
        clock.advance(0.9)
        supervisor._reap(clock(), deque(), {}, generation=1, chunks=[])
        assert handle.state == "busy"
        supervisor.close()

    def test_completed_chunk_is_not_requeued(self):
        """Death after the chunk's result already arrived (stale handle
        state) must not re-dispatch completed work."""
        supervisor, clock, _ = _supervisor(workers=1)
        handle = supervisor._workers[0]
        chunk = ((None, None, 0),)
        handle.current = (1, 0, 0, chunk)
        handle.state = "busy"
        completed = {0: "already-done"}
        todo: deque = deque()
        clock.advance(10.0)
        supervisor._reap(clock(), todo, completed, generation=1, chunks=[chunk])
        assert not todo and supervisor.requeues == 0
        supervisor.close()


class TestCrashLoopGiveUp:
    def test_exhausted_attempts_quarantine_instead_of_respawn_loop(self):
        supervisor, clock, _ = _supervisor(workers=1, max_chunk_attempts=2)
        handle = supervisor._workers[0]
        chunk = ((None, None, 4), (None, None, 9))
        handle.current = (1, 0, 1, chunk)  # already the second attempt
        handle.state = "busy"
        todo: deque = deque()
        completed: dict = {}
        clock.advance(10.0)
        supervisor._reap(clock(), todo, completed, generation=1, chunks=[chunk])
        assert not todo  # not requeued again
        result = completed[0]
        assert isinstance(result, ChunkResult)
        assert [o.index for o in result.outcomes] == [4, 9]
        assert all(o.result is None for o in result.outcomes)
        assert all("crash-loop" in o.failure for o in result.outcomes)
        assert all(
            o.failure_events == ("WorkerCrashLoop",) for o in result.outcomes
        )
        assert any("quarantining" in line for line in supervisor._logs)
        supervisor.close()

    def test_crash_loop_result_is_mergeable(self):
        result = _crash_loop_result(3, ((None, None, 7),), attempts=3)
        assert result.chunk_index == 3
        assert result.invocations == 0
        assert result.metrics_delta == {}


class TestDegradedMode:
    def test_respawn_failure_degrades_below_floor_with_log(self):
        supervisor, clock, spawned = _supervisor(workers=2, min_workers=2)
        # Every further spawn fails: the factory starts raising.
        supervisor._process_factory = lambda *a: (_ for _ in ()).throw(
            OSError("no more processes")
        )
        spawned[0].alive = False
        supervisor._reap(clock(), deque(), {}, generation=1, chunks=[])
        assert len(supervisor._workers) == 1  # degraded, still serving
        assert supervisor.restarts == 0
        assert any("degraded to 1 live worker" in line for line in supervisor._logs)
        supervisor.close()

    def test_total_death_raises_fleet_unavailable(self):
        supervisor, clock, spawned = _supervisor(workers=1)
        supervisor._process_factory = lambda *a: (_ for _ in ()).throw(
            OSError("no more processes")
        )
        spawned[0].alive = False
        with pytest.raises(FleetUnavailable):
            supervisor.run(((None, None, 0),))
        supervisor.close()

    def test_closed_fleet_refuses_runs(self):
        supervisor, _, _ = _supervisor(workers=1)
        supervisor.close()
        with pytest.raises(FleetUnavailable):
            supervisor.run(((None, None, 0),))

    def test_close_is_idempotent_and_kills_stragglers(self):
        supervisor, _, spawned = _supervisor(workers=2)
        supervisor.close()
        supervisor.close()
        assert all(p.killed for p in spawned)
        assert supervisor.snapshot()["workers"] == []


class TestWorkerFaultDecision:
    def test_site_embeds_chunk_and_attempt(self):
        assert _worker_site(3, 1) == "fleet/3/1"

    def test_check_worker_scoped_to_one_dispatch(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="worker.crash", probability=1.0, scope="fleet/2/0"),
            ),
            seed="unit",
        )
        injector = FaultInjector(plan)
        with attempt_scope(0):
            assert injector.check_worker("fleet/2/0").kind == "worker.crash"
            assert injector.check_worker("fleet/1/0") is None
        with attempt_scope(1):
            assert injector.check_worker("fleet/2/1") is None

    def test_chaos_plan_fires_on_every_chunks_first_attempt(self):
        injector = FaultInjector(worker_chaos_plan())
        with attempt_scope(0):
            for chunk in range(8):
                assert injector.check_worker(f"fleet/{chunk}/0") is not None
        with attempt_scope(1):
            for chunk in range(8):
                assert injector.check_worker(f"fleet/{chunk}/1") is None

    def test_pipeline_stages_ignore_worker_specs(self):
        """A worker-kind plan must not leak into invocation/sensor hooks."""
        injector = FaultInjector(worker_chaos_plan())
        injector.check_invocation("i7_45-stock/mcf/0")  # must not raise
