"""Unit tests for the per-client token-bucket rate limiter.

Every test drives the bucket with an explicit fake clock, so admit /
reject sequences are exact — no sleeps, no tolerance windows.
"""

import pytest

from repro.service.ratelimit import ClientRateLimiter, TokenBucket


class TestTokenBucket:
    def test_burst_admits_then_rejects(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert [bucket.try_take(0.0)[0] for _ in range(3)] == [True] * 3
        admitted, retry_after = bucket.try_take(0.0)
        assert not admitted
        assert retry_after == pytest.approx(1.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1.0)
        assert bucket.try_take(0.0)[0]
        assert not bucket.try_take(0.0)[0]
        # 2 tokens/s -> one full token exists after 0.5 s.
        assert bucket.try_take(0.5)[0]

    def test_retry_after_is_time_to_next_token(self):
        bucket = TokenBucket(rate=0.5, burst=1.0)
        bucket.try_take(0.0)
        _, retry_after = bucket.try_take(1.0)
        # 0.5 tokens refilled; half a token short at 0.5 tokens/s = 1 s.
        assert retry_after == pytest.approx(1.0)

    def test_never_accumulates_past_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        bucket.try_take(1000.0)  # long idle period
        assert bucket.tokens == pytest.approx(1.0)  # burst cap, minus one

    def test_clock_going_backwards_is_harmless(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_take(10.0)[0]
        admitted, _ = bucket.try_take(5.0)
        assert not admitted  # no refill from negative elapsed time

    @pytest.mark.parametrize("rate,burst", [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.5)])
    def test_rejects_degenerate_parameters(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)


class TestClientRateLimiter:
    def _limiter(self, rate, burst=1.0, max_clients=1024):
        clock = {"now": 0.0}
        limiter = ClientRateLimiter(
            rate, burst=burst, max_clients=max_clients,
            clock=lambda: clock["now"],
        )
        return limiter, clock

    def test_disabled_limiter_admits_everything(self):
        limiter, _ = self._limiter(rate=None)
        assert not limiter.enabled
        assert all(limiter.admit("anyone")[0] for _ in range(100))

    def test_clients_have_independent_budgets(self):
        limiter, _ = self._limiter(rate=1.0, burst=1.0)
        assert limiter.admit("a")[0]
        assert not limiter.admit("a")[0]
        assert limiter.admit("b")[0]  # b's bucket is untouched by a

    def test_retry_after_surfaces_from_bucket(self):
        limiter, _ = self._limiter(rate=0.25, burst=1.0)
        limiter.admit("a")
        admitted, retry_after = limiter.admit("a")
        assert not admitted
        assert retry_after == pytest.approx(4.0)

    def test_budget_refills_with_the_clock(self):
        limiter, clock = self._limiter(rate=1.0, burst=1.0)
        assert limiter.admit("a")[0]
        assert not limiter.admit("a")[0]
        clock["now"] = 1.0
        assert limiter.admit("a")[0]

    def test_client_table_is_lru_bounded(self):
        limiter, _ = self._limiter(rate=1.0, burst=1.0, max_clients=2)
        limiter.admit("a")  # a's bucket now empty
        limiter.admit("b")
        limiter.admit("c")  # evicts a (oldest)
        # a returns with a fresh bucket: admitted despite its spent budget.
        assert limiter.admit("a")[0]

    def test_recent_use_refreshes_lru_position(self):
        limiter, _ = self._limiter(rate=1.0, burst=2.0, max_clients=2)
        limiter.admit("a")
        limiter.admit("b")
        limiter.admit("a")  # a is now most recent
        limiter.admit("c")  # evicts b, not a
        admitted, _ = limiter.admit("a")
        assert not admitted  # a kept its (now spent) bucket

    def test_rejects_degenerate_table_size(self):
        with pytest.raises(ValueError):
            ClientRateLimiter(1.0, max_clients=0)
