"""Unit tests for the SQLite result store."""

import json

import pytest

from repro.core.study import Study, run_fingerprint
from repro.faults.plan import fail_stop_plan
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.service.store import (
    JOURNAL_SCHEMA_VERSION,
    SCHEMA_VERSION,
    JournalConflict,
    ResultStore,
    StoreError,
)
from repro.workloads.catalog import benchmark


@pytest.fixture(scope="module")
def results(study):
    """Two real records from the shared quick study."""
    return (
        study.measure(benchmark("mcf"), stock(CORE_I7_45)),
        study.measure(benchmark("db"), stock(ATOM_45)),
    )


class TestRoundTrip:
    def test_get_returns_equal_record(self, results):
        with ResultStore() as store:
            store.put(results[0])
            read = store.get(results[0].benchmark_name, results[0].config_key)
            assert read == results[0]

    def test_round_trip_preserves_response_bytes(self, results):
        """The byte-identity guarantee's storage leg: a record read back
        from SQLite re-serialises to the identical JSON."""
        with ResultStore() as store:
            store.put_many(results)
            for result in results:
                read = store.get(result.benchmark_name, result.config_key)
                assert json.dumps(read.as_record()) == json.dumps(
                    result.as_record()
                )

    def test_missing_pair_is_none(self):
        with ResultStore() as store:
            assert store.get("mcf", "nope") is None

    def test_put_is_idempotent(self, results):
        with ResultStore() as store:
            assert store.put_many(results) == 2
            assert store.put_many(results) == 2  # REPLACE, not duplicate
            assert len(store) == 2

    def test_contains_and_len(self, results):
        with ResultStore() as store:
            store.put(results[0])
            assert (results[0].benchmark_name, results[0].config_key) in store
            assert (results[1].benchmark_name, results[1].config_key) not in store
            assert len(store) == 1


class TestRecords:
    def test_sorted_order_and_filters(self, results):
        with ResultStore() as store:
            store.put_many(reversed(results))
            everything = store.records()
            keys = [(r.benchmark_name, r.config_key) for r in everything]
            assert keys == sorted(keys)
            only_mcf = store.records(benchmark="mcf")
            assert [r.benchmark_name for r in only_mcf] == ["mcf"]
            nothing = store.records(benchmark="mcf", config="no-such-key")
            assert nothing == []


class TestPersistence:
    def test_reopen_preserves_rows(self, tmp_path, results):
        path = tmp_path / "store.sqlite"
        with ResultStore(path) as store:
            store.put_many(results)
        with ResultStore(path) as store:
            assert len(store) == 2

    def test_schema_version_mismatch_refuses(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with ResultStore(path) as store:
            store.set_meta("schema_version", "999")
        with pytest.raises(StoreError, match="schema"):
            ResultStore(path)

    def test_refusal_carries_a_hint(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with ResultStore(path) as store:
            store.set_meta("schema_version", "999")
        with pytest.raises(StoreError, match="fresh --store"):
            ResultStore(path)

    def test_v1_store_migrates_in_place(self, tmp_path, results):
        """A pre-journal (PR 4-7) store opens cleanly: v2 only adds the
        journal table, so existing rows and the fingerprint survive."""
        path = tmp_path / "v1.sqlite"
        with ResultStore(path) as store:
            store.put_many(results)
            store.set_meta("schema_version", "1")
            store._conn.execute(
                "DELETE FROM meta WHERE key = 'journal_schema_version'"
            )
            store._conn.execute("DROP TABLE journal")
            store._conn.commit()
        with ResultStore(path) as reopened:
            assert reopened.get_meta("schema_version") == str(SCHEMA_VERSION)
            assert reopened.get_meta("journal_schema_version") == str(
                JOURNAL_SCHEMA_VERSION
            )
            assert len(reopened) == 2
            assert reopened.journal_counts()["pending"] == 0

    def test_journal_version_mismatch_refuses(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with ResultStore(path) as store:
            store.set_meta("journal_schema_version", "999")
        with pytest.raises(StoreError, match="journal schema"):
            ResultStore(path)


class TestFingerprint:
    def test_fresh_store_adopts_fingerprint(self):
        store = ResultStore()
        store.check_fingerprint(run_fingerprint(0.2))
        store.check_fingerprint(run_fingerprint(0.2))  # and keeps matching

    def test_mismatched_scale_refuses(self):
        store = ResultStore()
        store.check_fingerprint(run_fingerprint(0.2))
        with pytest.raises(StoreError, match="different run"):
            store.check_fingerprint(run_fingerprint(1.0))

    def test_mismatched_plan_is_compatible(self):
        """Stored bytes are plan-invariant (faulty invocations retry or
        quarantine, never persist wrong), so a store written under a
        fault plan warm-starts a plan-less server — crash recovery
        depends on restarting without the plan that killed the
        coordinator."""
        store = ResultStore()
        store.check_fingerprint(run_fingerprint(0.2, plan=fail_stop_plan()))
        store.check_fingerprint(run_fingerprint(0.2))


class TestWarmStart:
    def test_warm_start_preloads_study_cache(self, references, results):
        store = ResultStore()
        store.put_many(results)
        fresh = Study(references=references, invocation_scale=0.2)
        assert store.warm_start(fresh) == 2
        assert fresh.cached_pairs == 2
        # Preloaded pairs answer without re-measuring, byte-identically.
        again = fresh.measure(benchmark("mcf"), stock(CORE_I7_45))
        assert json.dumps(again.as_record()) == json.dumps(
            results[0].as_record()
        )

    def test_warm_start_skips_already_cached_pairs(self, references, results):
        store = ResultStore()
        store.put_many(results)
        fresh = Study(references=references, invocation_scale=0.2)
        store.warm_start(fresh)
        assert store.warm_start(fresh) == 0


class TestWriteAheadLog:
    def test_on_disk_store_runs_in_wal_mode(self, tmp_path, results):
        store = ResultStore(tmp_path / "wal.sqlite")
        (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"
        (timeout_ms,) = store._conn.execute("PRAGMA busy_timeout").fetchone()
        assert timeout_ms == 5000
        store.put(results[0])
        # The WAL sidecar exists while the connection is live: commits
        # land there first, which is what makes a torn writer recoverable.
        assert (tmp_path / "wal.sqlite-wal").exists()
        store.close()

    def test_busy_timeout_is_configurable(self, tmp_path):
        store = ResultStore(tmp_path / "t.sqlite", busy_timeout_s=0.25)
        (timeout_ms,) = store._conn.execute("PRAGMA busy_timeout").fetchone()
        assert timeout_ms == 250
        store.close()

    def test_memory_store_keeps_default_journal(self):
        store = ResultStore()
        (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode != "wal"  # :memory: has no file to journal
        store.close()


class TestJournal:
    """The write-ahead request journal (PR 8)."""

    def test_fresh_admit_is_pending(self):
        with ResultStore() as store:
            assert store.journal_admit("k1", "mcf", "cfg") == "new"
            entry = store.journal_entry("k1")
            assert entry.status == "pending"
            assert entry.attempts == 1
            assert entry.completed_s is None

    def test_duplicate_admit_coalesces(self):
        with ResultStore() as store:
            store.journal_admit("k1", "mcf", "cfg")
            assert store.journal_admit("k1", "mcf", "cfg") == "pending"
            assert store.journal_entry("k1").attempts == 1

    def test_key_reuse_for_different_request_conflicts(self):
        with ResultStore() as store:
            store.journal_admit("k1", "mcf", "cfg", plan_fp="abc")
            with pytest.raises(JournalConflict, match="already used"):
                store.journal_admit("k1", "db", "cfg", plan_fp="abc")
            with pytest.raises(JournalConflict):
                store.journal_admit("k1", "mcf", "other-cfg", plan_fp="abc")
            with pytest.raises(JournalConflict):
                store.journal_admit("k1", "mcf", "cfg", plan_fp=None)

    def test_done_admit_reports_done(self):
        with ResultStore() as store:
            store.journal_admit("k1", "mcf", "cfg")
            store.journal_complete(["k1"])
            assert store.journal_admit("k1", "mcf", "cfg") == "done"
            assert store.journal_entry("k1").status == "done"

    @pytest.mark.parametrize("finish", ["journal_shed", "journal_fail"])
    def test_terminal_retryable_states_reopen(self, finish):
        with ResultStore() as store:
            store.journal_admit("k1", "mcf", "cfg")
            assert getattr(store, finish)(["k1"], "deadline") == 1
            prior = store.journal_admit("k1", "mcf", "cfg")
            assert prior in ("shed", "failed")
            entry = store.journal_entry("k1")
            assert entry.status == "pending"
            assert entry.attempts == 2
            assert entry.detail is None

    def test_finish_only_touches_pending_rows(self):
        with ResultStore() as store:
            store.journal_admit("k1", "mcf", "cfg")
            store.journal_complete(["k1"])
            # A late shed/fail for an already-done key is a no-op.
            assert store.journal_shed(["k1"], "late") == 0
            assert store.journal_fail(["k1"], "late") == 0
            assert store.journal_entry("k1").status == "done"

    def test_pending_is_admission_ordered(self):
        with ResultStore() as store:
            for key in ("kb", "ka", "kc"):
                store.journal_admit(key, "mcf", f"cfg-{key}")
            store.journal_complete(["ka"])
            pending = store.journal_pending()
            assert [e.request_key for e in pending] == ["kb", "kc"]

    def test_counts_cover_every_status(self):
        with ResultStore() as store:
            store.journal_admit("k1", "mcf", "cfg1")
            store.journal_admit("k2", "mcf", "cfg2")
            store.journal_admit("k3", "mcf", "cfg3")
            store.journal_complete(["k1"])
            store.journal_shed(["k2"], "expired")
            assert store.journal_counts() == {
                "pending": 1,
                "done": 1,
                "shed": 1,
                "failed": 0,
            }

    def test_commit_batch_couples_records_and_completions(self, results):
        """The exactly-once coupling: one call, one transaction, both the
        result rows and the journal completions land together."""
        with ResultStore() as store:
            keys = []
            for i, result in enumerate(results):
                key = f"k{i}"
                store.journal_admit(
                    key, result.benchmark_name, result.config_key
                )
                keys.append(key)
            assert store.commit_batch(results, keys) == 2
            assert len(store) == 2
            counts = store.journal_counts()
            assert counts["pending"] == 0
            assert counts["done"] == 2
            for result in results:
                read = store.get(result.benchmark_name, result.config_key)
                assert json.dumps(read.as_record()) == json.dumps(
                    result.as_record()
                )

    def test_commit_batch_survives_reopen(self, tmp_path, results):
        path = tmp_path / "journal.sqlite"
        with ResultStore(path) as store:
            store.journal_admit("k1", results[0].benchmark_name,
                                results[0].config_key)
            store.journal_admit("k2", "never", "finished")
            store.commit_batch([results[0]], ["k1"])
        with ResultStore(path) as reopened:
            assert reopened.journal_entry("k1").status == "done"
            pending = reopened.journal_pending()
            assert [e.request_key for e in pending] == ["k2"]

    def test_plan_round_trips_through_journal(self):
        plan = fail_stop_plan()
        with ResultStore() as store:
            store.journal_admit(
                "k1",
                "mcf",
                "cfg",
                plan=json.dumps(plan.as_dict(), sort_keys=True),
                plan_fp=plan.fingerprint,
            )
            entry = store.journal_entry("k1")
            from repro.faults.plan import FaultPlan

            assert FaultPlan.from_dict(json.loads(entry.plan)) == plan
            assert entry.plan_fp == plan.fingerprint


class TestCrashConsistency:
    """SIGKILL a writer mid-put; the survivors must be intact.

    This is the contract the campaign server leans on: the measurement
    thread may die at any byte boundary (OOM kill, node failure), and the
    rows already committed must come back exactly — no torn JSON, no
    corrupt pages, and a warm start from the reopened store serves the
    byte-identical records the dead writer committed.
    """

    WRITER = """
import json, sys
from repro.core.results import RunResult
from repro.service.store import ResultStore

path, record_path = sys.argv[1], sys.argv[2]
record = json.loads(open(record_path).read())
store = ResultStore(path)
index = 0
while True:
    record["benchmark"] = f"bench-{index:06d}"
    store.put(RunResult.from_record(record))
    index += 1
"""

    def test_killed_writer_leaves_no_torn_rows(self, tmp_path, results):
        import os
        import signal
        import subprocess
        import sys
        import time as time_module

        db = tmp_path / "crash.sqlite"
        template = dict(results[0].as_record())
        record_path = tmp_path / "record.json"
        record_path.write_text(json.dumps(template))
        script = tmp_path / "writer.py"
        script.write_text(self.WRITER)

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p
        )
        writer = subprocess.Popen(
            [sys.executable, str(script), str(db), str(record_path)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Watch the row count from a second connection (the server's
            # reader position) and pull the trigger mid-stream.
            watcher = ResultStore(db, busy_timeout_s=10.0)
            deadline = time_module.monotonic() + 60.0
            while len(watcher) < 25:
                assert writer.poll() is None, "writer died on its own"
                assert time_module.monotonic() < deadline, (
                    "writer never reached 25 rows"
                )
                time_module.sleep(0.01)
            writer.send_signal(signal.SIGKILL)
            writer.wait(timeout=30)
            watcher.close()
        finally:
            if writer.poll() is None:
                writer.kill()
                writer.wait(timeout=30)

        reopened = ResultStore(db)
        (verdict,) = reopened._conn.execute(
            "PRAGMA integrity_check"
        ).fetchone()
        assert verdict == "ok"
        survivors = reopened.records()
        assert len(survivors) >= 25
        # Every committed row parses and re-serialises: no torn JSON.
        for survivor in survivors:
            json.dumps(survivor.as_record())
        # Committed rows are the byte-identical records the writer put:
        # a warm start serves exactly what was measured.
        expected = dict(template)
        expected["benchmark"] = "bench-000000"
        first = reopened.get("bench-000000", template["configuration"])
        assert json.dumps(first.as_record()) == json.dumps(expected)
        # The sequence has no gaps: commit order is put order, so a kill
        # at row N leaves exactly rows 0..N-1 (never row N without N-1).
        names = sorted(s.benchmark_name for s in survivors)
        assert names == [f"bench-{i:06d}" for i in range(len(names))]
        reopened.close()
