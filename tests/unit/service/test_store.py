"""Unit tests for the SQLite result store."""

import json

import pytest

from repro.core.study import Study, run_fingerprint
from repro.faults.plan import fail_stop_plan
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.service.store import ResultStore, StoreError
from repro.workloads.catalog import benchmark


@pytest.fixture(scope="module")
def results(study):
    """Two real records from the shared quick study."""
    return (
        study.measure(benchmark("mcf"), stock(CORE_I7_45)),
        study.measure(benchmark("db"), stock(ATOM_45)),
    )


class TestRoundTrip:
    def test_get_returns_equal_record(self, results):
        with ResultStore() as store:
            store.put(results[0])
            read = store.get(results[0].benchmark_name, results[0].config_key)
            assert read == results[0]

    def test_round_trip_preserves_response_bytes(self, results):
        """The byte-identity guarantee's storage leg: a record read back
        from SQLite re-serialises to the identical JSON."""
        with ResultStore() as store:
            store.put_many(results)
            for result in results:
                read = store.get(result.benchmark_name, result.config_key)
                assert json.dumps(read.as_record()) == json.dumps(
                    result.as_record()
                )

    def test_missing_pair_is_none(self):
        with ResultStore() as store:
            assert store.get("mcf", "nope") is None

    def test_put_is_idempotent(self, results):
        with ResultStore() as store:
            assert store.put_many(results) == 2
            assert store.put_many(results) == 2  # REPLACE, not duplicate
            assert len(store) == 2

    def test_contains_and_len(self, results):
        with ResultStore() as store:
            store.put(results[0])
            assert (results[0].benchmark_name, results[0].config_key) in store
            assert (results[1].benchmark_name, results[1].config_key) not in store
            assert len(store) == 1


class TestRecords:
    def test_sorted_order_and_filters(self, results):
        with ResultStore() as store:
            store.put_many(reversed(results))
            everything = store.records()
            keys = [(r.benchmark_name, r.config_key) for r in everything]
            assert keys == sorted(keys)
            only_mcf = store.records(benchmark="mcf")
            assert [r.benchmark_name for r in only_mcf] == ["mcf"]
            nothing = store.records(benchmark="mcf", config="no-such-key")
            assert nothing == []


class TestPersistence:
    def test_reopen_preserves_rows(self, tmp_path, results):
        path = tmp_path / "store.sqlite"
        with ResultStore(path) as store:
            store.put_many(results)
        with ResultStore(path) as store:
            assert len(store) == 2

    def test_schema_version_mismatch_refuses(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with ResultStore(path) as store:
            store.set_meta("schema_version", "999")
        with pytest.raises(StoreError, match="schema"):
            ResultStore(path)


class TestFingerprint:
    def test_fresh_store_adopts_fingerprint(self):
        store = ResultStore()
        store.check_fingerprint(run_fingerprint(0.2))
        store.check_fingerprint(run_fingerprint(0.2))  # and keeps matching

    def test_mismatched_scale_refuses(self):
        store = ResultStore()
        store.check_fingerprint(run_fingerprint(0.2))
        with pytest.raises(StoreError, match="different run"):
            store.check_fingerprint(run_fingerprint(1.0))

    def test_mismatched_plan_refuses(self):
        store = ResultStore()
        store.check_fingerprint(run_fingerprint(0.2, plan=fail_stop_plan()))
        with pytest.raises(StoreError, match="fault_plan"):
            store.check_fingerprint(run_fingerprint(0.2))


class TestWarmStart:
    def test_warm_start_preloads_study_cache(self, references, results):
        store = ResultStore()
        store.put_many(results)
        fresh = Study(references=references, invocation_scale=0.2)
        assert store.warm_start(fresh) == 2
        assert fresh.cached_pairs == 2
        # Preloaded pairs answer without re-measuring, byte-identically.
        again = fresh.measure(benchmark("mcf"), stock(CORE_I7_45))
        assert json.dumps(again.as_record()) == json.dumps(
            results[0].as_record()
        )

    def test_warm_start_skips_already_cached_pairs(self, references, results):
        store = ResultStore()
        store.put_many(results)
        fresh = Study(references=references, invocation_scale=0.2)
        store.warm_start(fresh)
        assert store.warm_start(fresh) == 0
