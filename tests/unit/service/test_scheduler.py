"""Unit tests for the coalescing, admission-controlled scheduler.

The tests drive submit/dispatch ordering through ``asyncio.gather``:
submissions all run before the dispatcher task gets the loop, so the
coalesce / saturate decisions they exercise are deterministic.
"""

import asyncio
import json

import pytest

from repro.core.study import Study
from repro.faults.plan import FaultPlan, FaultSpec, demo_plan, fail_stop_plan
from repro.faults.retry import RetryPolicy
from repro.hardware.catalog import ATOM_45, CORE2DUO_45, CORE_I7_45
from repro.hardware.config import stock
from repro.service.scheduler import (
    CampaignScheduler,
    DeadlineExceeded,
    Draining,
    InvalidPlan,
    MeasurementFailed,
    Saturated,
)
from repro.service.store import ResultStore
from repro.workloads.catalog import benchmark

MCF = benchmark("mcf")
DB = benchmark("db")
I7 = stock(CORE_I7_45)
ATOM = stock(ATOM_45)


def _study(references, **kwargs):
    return Study(references=references, invocation_scale=0.2, **kwargs)


def _run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_identical_submits_share_one_job(self, references):
        study = _study(references)
        scheduler = CampaignScheduler(study)

        async def main():
            await scheduler.start()
            results = await asyncio.gather(
                *(scheduler.submit(MCF, I7) for _ in range(5))
            )
            await scheduler.drain()
            return results

        results = _run(main())
        assert len({id(r) for r in results}) == 1  # literally the same result
        assert scheduler.completed == 1
        assert scheduler.coalesced == 4
        assert study.cached_pairs == 1

    def test_coalesced_result_matches_sequential_run(self, references):
        study = _study(references)
        scheduler = CampaignScheduler(study)

        async def main():
            await scheduler.start()
            results = await asyncio.gather(
                scheduler.submit(MCF, I7), scheduler.submit(MCF, I7)
            )
            await scheduler.drain()
            return results

        served = _run(main())
        sequential = _study(references).run([I7], [MCF]).single()
        for result in served:
            assert json.dumps(result.as_record()) == json.dumps(
                sequential.as_record()
            )

    def test_different_pairs_are_distinct_jobs(self, references):
        scheduler = CampaignScheduler(_study(references))

        async def main():
            await scheduler.start()
            a, b = await asyncio.gather(
                scheduler.submit(MCF, I7), scheduler.submit(DB, ATOM)
            )
            await scheduler.drain()
            return a, b

        a, b = _run(main())
        assert (a.benchmark_name, a.config_key) != (b.benchmark_name, b.config_key)
        assert scheduler.completed == 2
        assert scheduler.coalesced == 0

    def test_plan_is_part_of_the_job_key(self, references):
        """The same pair with and without a fault plan must not coalesce."""
        scheduler = CampaignScheduler(_study(references))

        async def main():
            await scheduler.start()
            await asyncio.gather(
                scheduler.submit(MCF, I7),
                scheduler.submit(MCF, I7, plan=fail_stop_plan()),
            )
            await scheduler.drain()

        _run(main())
        assert scheduler.completed == 2
        assert scheduler.coalesced == 0


class TestAdmissionControl:
    def test_saturation_raises_with_retry_after(self, references):
        scheduler = CampaignScheduler(_study(references), max_pending=1)

        async def main():
            await scheduler.start()
            outcomes = await asyncio.gather(
                scheduler.submit(MCF, I7),
                scheduler.submit(DB, ATOM),
                return_exceptions=True,
            )
            await scheduler.drain()
            return outcomes

        outcomes = _run(main())
        errors = [o for o in outcomes if isinstance(o, Exception)]
        assert len(errors) == 1
        assert isinstance(errors[0], Saturated)
        assert errors[0].retry_after_s >= 1.0
        assert scheduler.rejected == 1

    def test_coalescing_bypasses_saturation(self, references):
        """An identical request rides the existing job even at capacity."""
        scheduler = CampaignScheduler(_study(references), max_pending=1)

        async def main():
            await scheduler.start()
            results = await asyncio.gather(
                scheduler.submit(MCF, I7), scheduler.submit(MCF, I7)
            )
            await scheduler.drain()
            return results

        results = _run(main())
        assert len(results) == 2
        assert scheduler.rejected == 0

    def test_corrupting_per_request_plan_is_refused(self, references):
        scheduler = CampaignScheduler(_study(references))

        async def main():
            await scheduler.start()
            with pytest.raises(InvalidPlan):
                await scheduler.submit(MCF, I7, plan=demo_plan())
            await scheduler.drain()

        _run(main())

    def test_submit_after_drain_raises_draining(self, references):
        scheduler = CampaignScheduler(_study(references))

        async def main():
            await scheduler.start()
            await scheduler.drain()
            with pytest.raises(Draining):
                await scheduler.submit(MCF, I7)

        _run(main())


class TestFailuresAndPersistence:
    def test_exhausted_retries_surface_as_measurement_failed(self, references):
        always_crash = FaultPlan(
            specs=(FaultSpec(kind="invocation.crash", probability=1.0),),
            seed="always",
        )
        study = _study(references, retry=RetryPolicy(max_retries=1))
        scheduler = CampaignScheduler(study)

        async def main():
            await scheduler.start()
            with pytest.raises(MeasurementFailed):
                await scheduler.submit(MCF, I7, plan=always_crash)
            await scheduler.drain()

        _run(main())
        assert scheduler.failed == 1
        assert study.quarantined  # the pair is quarantined, not retried forever

    def test_fail_stop_plan_reproduces_fault_free_bytes(self, references):
        """Retried fail-stop faults must serve the fault-free record."""
        faulted = CampaignScheduler(_study(references))

        async def main():
            await faulted.start()
            result = await faulted.submit(DB, ATOM, plan=fail_stop_plan())
            await faulted.drain()
            return result

        under_faults = _run(main())
        clean = _study(references).measure(DB, ATOM)
        assert json.dumps(under_faults.as_record()) == json.dumps(
            clean.as_record()
        )

    def test_new_results_are_persisted_to_the_store(self, references):
        store = ResultStore()
        scheduler = CampaignScheduler(_study(references), store=store)

        async def main():
            await scheduler.start()
            await scheduler.submit(MCF, I7)
            return await scheduler.drain()

        summary = _run(main())
        assert len(store) == 1
        assert store.get("mcf", I7.key) is not None
        assert summary["store_records"] == 1

    def test_batched_heterogeneous_jobs_all_resolve(self, references):
        """Jobs queued while a batch measures dispatch together next cycle."""
        scheduler = CampaignScheduler(_study(references))
        pairs = [(MCF, I7), (DB, ATOM), (MCF, ATOM), (DB, stock(CORE2DUO_45))]

        async def main():
            await scheduler.start()
            results = await asyncio.gather(
                *(scheduler.submit(b, c) for b, c in pairs)
            )
            await scheduler.drain()
            return results

        results = _run(main())
        assert [(r.benchmark_name, r.config_key) for r in results] == [
            (b.name, c.key) for b, c in pairs
        ]

    def test_rejects_degenerate_queue_bound(self, references):
        with pytest.raises(ValueError):
            CampaignScheduler(_study(references), max_pending=0)


class TestDeadlinesAndJournal:
    """PR 8: deadline shedding, recovery priority, journal coupling."""

    def test_dead_on_arrival_deadline_is_shed_at_submit(self, references):
        ticks = [100.0]
        store = ResultStore()
        store.journal_admit("rk", MCF.name, I7.key)
        scheduler = CampaignScheduler(
            _study(references), store=store, clock=lambda: ticks[0]
        )

        async def main():
            await scheduler.start()
            with pytest.raises(DeadlineExceeded):
                await scheduler.submit(MCF, I7, request_key="rk", deadline=99.0)
            await scheduler.drain()

        _run(main())
        assert scheduler.shed == 1
        assert store.journal_entry("rk").status == "shed"

    def test_expired_deadline_is_shed_before_dispatch(self, references):
        ticks = [100.0]
        store = ResultStore()
        store.journal_admit("rk", MCF.name, I7.key)
        scheduler = CampaignScheduler(
            _study(references), store=store, clock=lambda: ticks[0]
        )

        async def main():
            await scheduler.start()
            task = asyncio.create_task(
                scheduler.submit(MCF, I7, request_key="rk", deadline=105.0)
            )
            # Let the submit enqueue, then expire the deadline before the
            # dispatcher gets the loop: the job must be shed, not run.
            await asyncio.sleep(0)
            ticks[0] = 200.0
            with pytest.raises(DeadlineExceeded):
                await task
            await scheduler.drain()

        _run(main())
        assert scheduler.shed == 1
        assert scheduler.completed == 0
        assert store.journal_entry("rk").status == "shed"
        # Shed before the engine: nothing was measured or stored.
        assert scheduler.study.cached_pairs == 0
        assert len(store) == 0

    def test_no_deadline_waiter_unbounds_a_coalesced_job(self, references):
        """A coalescer without a deadline must never be 504ed by the
        first submitter's tighter budget."""
        ticks = [100.0]
        scheduler = CampaignScheduler(
            _study(references), clock=lambda: ticks[0]
        )

        async def main():
            await scheduler.start()
            bounded = asyncio.create_task(
                scheduler.submit(MCF, I7, deadline=105.0)
            )
            await asyncio.sleep(0)
            unbounded = asyncio.create_task(scheduler.submit(MCF, I7))
            await asyncio.sleep(0)
            ticks[0] = 200.0
            results = await asyncio.gather(bounded, unbounded)
            await scheduler.drain()
            return results

        first, second = _run(main())
        # The job ran (the shared deadline was relaxed to None), so both
        # waiters — including the one whose budget had lapsed — got the
        # result rather than a shed.
        assert first == second
        assert scheduler.shed == 0

    def test_recovery_submits_bypass_saturation(self, references):
        scheduler = CampaignScheduler(_study(references), max_pending=1)

        async def main():
            await scheduler.start()
            first = asyncio.create_task(scheduler.submit(MCF, I7))
            await asyncio.sleep(0)
            # The table is full: a fresh request is refused...
            with pytest.raises(Saturated):
                await scheduler.submit(DB, ATOM)
            # ...but a journal replay is admitted anyway: recovery work
            # was already accepted once, so it outranks new arrivals.
            replay = asyncio.create_task(
                scheduler.submit(DB, ATOM, recovery=True)
            )
            results = await asyncio.gather(first, replay)
            await scheduler.drain()
            return results

        results = _run(main())
        assert len(results) == 2
        assert scheduler.rejected == 1

    def test_batch_commit_marks_journal_done(self, references):
        store = ResultStore()
        store.journal_admit("rk-mcf", MCF.name, I7.key)
        store.journal_admit("rk-db", DB.name, ATOM.key)
        scheduler = CampaignScheduler(_study(references), store=store)

        async def main():
            await scheduler.start()
            results = await asyncio.gather(
                scheduler.submit(MCF, I7, request_key="rk-mcf"),
                scheduler.submit(DB, ATOM, request_key="rk-db"),
            )
            await scheduler.drain()
            return results

        results = _run(main())
        counts = store.journal_counts()
        assert counts["pending"] == 0
        assert counts["done"] == 2
        # The same transaction persisted the records the journal claims.
        for result in results:
            stored = store.get(result.benchmark_name, result.config_key)
            assert json.dumps(stored.as_record()) == json.dumps(
                result.as_record()
            )

    def test_failed_measurement_marks_journal_failed(self, references):
        always_crash = FaultPlan(
            specs=(FaultSpec(kind="invocation.crash", probability=1.0),),
            seed="always",
        )
        store = ResultStore()
        store.journal_admit(
            "rk", MCF.name, I7.key, plan_fp=always_crash.fingerprint
        )
        study = _study(references, retry=RetryPolicy(max_retries=1))
        scheduler = CampaignScheduler(study, store=store)

        async def main():
            await scheduler.start()
            with pytest.raises(MeasurementFailed):
                await scheduler.submit(
                    MCF, I7, always_crash, request_key="rk"
                )
            await scheduler.drain()

        _run(main())
        entry = store.journal_entry("rk")
        assert entry.status == "failed"
        assert entry.detail

    def test_drain_escalation_leaves_journal_pending(self, references):
        """The satellite contract: a drain that expires mid-batch leaves
        the journal pending, so a later --recover completes the work."""
        import threading

        started = threading.Event()
        release = threading.Event()
        store = ResultStore()
        store.journal_admit("rk", MCF.name, I7.key)
        ticks = iter([100.0, 1000.0])
        scheduler = CampaignScheduler(
            _study(references),
            store=store,
            clock=lambda: next(ticks, 1000.0),
        )

        def hung_measure(plan, pairs, schedule_spans, batch_keys=None):
            started.set()
            release.wait()
            return {}, {}

        scheduler._measure_batch = hung_measure

        async def main():
            await scheduler.start()
            task = asyncio.create_task(
                scheduler.submit(MCF, I7, request_key="rk")
            )
            await asyncio.get_running_loop().run_in_executor(
                None, started.wait
            )
            summary = await scheduler.drain(deadline_s=5.0)
            with pytest.raises(Draining):
                await task
            return summary

        try:
            summary = _run(main())
        finally:
            release.set()
        assert summary["drain_timed_out"] is True
        # Draining is crash-shaped, not terminal: the journal still owes
        # this request, and recovery will replay it.
        assert store.journal_entry("rk").status == "pending"


class TestDrainDeadline:
    """``drain(deadline_s=...)``: the bounded-shutdown escalation path.

    Timing runs on the scheduler's injectable clock, so the "deadline
    exceeded" branch is exercised by jumping a fake clock — no sleeping,
    and no dependence on how long the hung measurement really takes."""

    def test_hung_measurement_cannot_hold_drain_hostage(self, references):
        import threading

        started = threading.Event()
        release = threading.Event()
        # First clock() call stamps the deadline; the second (computing
        # the remaining budget) has leapt far past it, so the drain
        # escalates immediately instead of waiting out real seconds.
        ticks = iter([100.0, 1000.0])
        scheduler = CampaignScheduler(
            _study(references), clock=lambda: next(ticks, 1000.0)
        )

        def hung_measure(plan, pairs, schedule_spans, batch_keys=None):
            started.set()
            release.wait()  # wedged until the test cleans up
            return {}, {}

        scheduler._measure_batch = hung_measure

        async def main():
            await scheduler.start()
            task = asyncio.create_task(scheduler.submit(MCF, I7))
            # Park until the measurement thread is genuinely wedged.
            await asyncio.get_running_loop().run_in_executor(
                None, started.wait
            )
            summary = await scheduler.drain(deadline_s=5.0)
            with pytest.raises(Draining):
                await task
            return summary

        try:
            summary = _run(main())
        finally:
            release.set()  # unwedge the abandoned worker thread
        assert summary["drain_timed_out"] is True
        assert summary["cancelled"] == 1
        assert scheduler.pending == 0

    def test_fast_drain_never_escalates(self, references):
        scheduler = CampaignScheduler(_study(references))

        async def main():
            await scheduler.start()
            await scheduler.submit(MCF, I7)
            return await scheduler.drain(deadline_s=600.0)

        summary = _run(main())
        assert summary["drain_timed_out"] is False
        assert summary["cancelled"] == 0
        assert summary["completed"] == 1

    def test_unbounded_drain_still_waits(self, references):
        """``deadline_s=None`` (the default, and the CLI default) keeps
        the wait-forever semantics earlier PRs relied on."""
        scheduler = CampaignScheduler(_study(references))

        async def main():
            await scheduler.start()
            await scheduler.submit(DB, ATOM)
            return await scheduler.drain()

        summary = _run(main())
        assert summary["drain_timed_out"] is False
        assert summary["completed"] == 1
