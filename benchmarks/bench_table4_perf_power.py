"""Table 4: average performance and power per stock processor.

Regenerates the artifact with the paper's full measurement protocol and
prints the paper-versus-measured rows.  Run with
``pytest benchmarks/bench_table4_perf_power.py --benchmark-only``.
"""

from _harness import regenerate


def test_table4(benchmark, study):
    result = regenerate(benchmark, study, "table4")
    assert all("speedup:Avg_w" in row for row in result.rows)
