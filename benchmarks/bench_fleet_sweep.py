"""Overhead benchmark for the supervised worker fleet (PR 7).

Runs one campaign sweep through the plain process pool and once through
the supervised fleet (heartbeats + liveness loop + requeue machinery),
reports the fleet's overhead over the pool, and always verifies the two
datasets are record-for-record identical — supervision that changed the
data would be a bug, not a robustness feature.

The fleet's extra cost is a heartbeat thread per worker plus a polling
supervisor loop on the dispatch side; both are tiny next to real
measurement work, and this benchmark keeps them honest.

Environment variables:

* ``REPRO_BENCH_JOBS`` — worker count for both sides (default: CPU
  count);
* ``REPRO_BENCH_MAX_FLEET_OVERHEAD`` — when set, *assert* the fleet
  sweep takes at most this multiple of the pool sweep (e.g. ``1.25``
  for 25% overhead).  Unset, the benchmark reports and passes: shared
  or single-core runners see noisy ratios, but the equivalence check
  still bites.

Run directly:
``PYTHONPATH=src python -m pytest -q -s benchmarks/bench_fleet_sweep.py``
(kept out of the tier-1 ``testpaths`` so machine-dependent timing never
blocks unrelated changes).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.normalization import References  # noqa: E402
from repro.core.study import Study  # noqa: E402
from repro.execution.engine import default_engine  # noqa: E402
from repro.hardware.configurations import stock_configurations  # noqa: E402
from repro.workloads.catalog import BENCHMARKS  # noqa: E402

_REPS = 3


def _timed_sweep(
    references: References, jobs: int, supervised: bool
) -> tuple[float, list[dict]]:
    """One fresh-study sweep; returns (seconds, result records)."""
    study = Study(
        references=references,
        invocation_scale=1.0,
        supervised=supervised,
    )
    configs = stock_configurations()
    start = time.perf_counter()
    results = study.run(configs, BENCHMARKS, jobs=jobs)
    elapsed = time.perf_counter() - start
    return elapsed, [result.as_record() for result in results]


def test_fleet_overhead_over_pool():
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or (os.cpu_count() or 1)
    max_overhead = float(
        os.environ.get("REPRO_BENCH_MAX_FLEET_OVERHEAD", "0")
    )

    references = References(default_engine())
    # Warm process-wide state (calibration, meters, protocol tables) so
    # neither timed side pays it; each worker process still pays its own
    # per-process warm-up inside the timed run — that cost is real.
    _timed_sweep(references, jobs=jobs, supervised=False)

    pool_times: list[float] = []
    fleet_times: list[float] = []
    pool_records = fleet_records = None
    for _ in range(_REPS):
        elapsed, pool_records = _timed_sweep(
            references, jobs=jobs, supervised=False
        )
        pool_times.append(elapsed)
        elapsed, fleet_records = _timed_sweep(
            references, jobs=jobs, supervised=True
        )
        fleet_times.append(elapsed)

    assert fleet_records == pool_records, (
        "supervised sweep diverged from the pool dataset"
    )

    pool_best = min(pool_times)
    fleet_best = min(fleet_times)
    ratio = fleet_best / pool_best if pool_best else float("inf")
    print(
        f"\nfleet sweep benchmark (jobs={jobs}):\n"
        f"  pool  best of {_REPS}: {pool_best:8.2f}s\n"
        f"  fleet best of {_REPS}: {fleet_best:8.2f}s\n"
        f"  overhead ratio:      {ratio:8.2f}x"
    )
    if max_overhead:
        assert ratio <= max_overhead, (
            f"fleet overhead {ratio:.2f}x exceeds the "
            f"{max_overhead:.2f}x budget"
        )
