"""Fig. 9: effect of gross microarchitecture change.

Regenerates the artifact with the paper's full measurement protocol and
prints the paper-versus-measured rows.  Run with
``pytest benchmarks/bench_fig09_microarch.py --benchmark-only``.
"""

from _harness import regenerate


def test_fig9(benchmark, study):
    result = regenerate(benchmark, study, "fig9")
    assert len([r for r in result.rows if "performance" in r]) >= 4
