"""Fig. 2: measured power versus TDP.

Regenerates the artifact with the paper's full measurement protocol and
prints the paper-versus-measured rows.  Run with
``pytest benchmarks/bench_fig02_tdp.py --benchmark-only``.
"""

from _harness import regenerate
from repro.reporting import figures


def test_fig2(benchmark, study):
    result = regenerate(benchmark, study, "fig2")
    print()
    print(figures.figure2(study))
    assert all(float(r["tdp_over_max"]) > 1.0 for r in result.rows)
