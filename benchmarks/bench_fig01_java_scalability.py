"""Fig. 1: scalability of multithreaded Java on the i7.

Regenerates the artifact with the paper's full measurement protocol and
prints the paper-versus-measured rows.  Run with
``pytest benchmarks/bench_fig01_java_scalability.py --benchmark-only``.
"""

from _harness import regenerate


def test_fig1(benchmark, study):
    result = regenerate(benchmark, study, "fig1")
    assert result.rows[0]["benchmark"] == "sunflow"
