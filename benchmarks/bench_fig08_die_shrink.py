"""Fig. 8: impact of a die shrink.

Regenerates the artifact with the paper's full measurement protocol and
prints the paper-versus-measured rows.  Run with
``pytest benchmarks/bench_fig08_die_shrink.py --benchmark-only``.
"""

from _harness import regenerate


def test_fig8(benchmark, study):
    result = regenerate(benchmark, study, "fig8")
    assert any("comparison" in r for r in result.rows)
