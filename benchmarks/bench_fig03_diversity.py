"""Fig. 3: benchmark power/performance diversity on the i7.

Regenerates the artifact with the paper's full measurement protocol and
prints the paper-versus-measured rows.  Run with
``pytest benchmarks/bench_fig03_diversity.py --benchmark-only``.
"""

from _harness import regenerate
from repro.reporting import figures


def test_fig3(benchmark, study):
    result = regenerate(benchmark, study, "fig3")
    print()
    print(figures.figure3(study))
    assert len(result.rows) == 61
