"""Ablation: equal group weighting (Avg_w) versus plain benchmark mean.

Quantifies why the paper weights the four workload groups equally (§2.6):
the plain mean over-weights the 27 SPEC CPU benchmarks, systematically
understating parallel machines.  Beyond-paper extension (DESIGN.md §7).
Run with ``pytest benchmarks/bench_ablation_weighting.py --benchmark-only``.
"""

from repro.core.aggregation import full_aggregate
from repro.hardware.catalog import PROCESSORS
from repro.hardware.config import stock
from repro.reporting.tables import render_rows
from repro.workloads.catalog import BENCHMARKS


def _sweep(study):
    rows = []
    for spec in PROCESSORS:
        results = study.run_config(stock(spec))
        aggregate = full_aggregate(results.values("speedup"), BENCHMARKS)
        rows.append(
            {
                "processor": spec.label,
                "contexts": spec.hardware_contexts,
                "Avg_w": round(aggregate["Avg_w"], 2),
                "Avg_b": round(aggregate["Avg_b"], 2),
                "Avg_w/Avg_b": round(aggregate["Avg_w"] / aggregate["Avg_b"], 3),
            }
        )
    return rows


def test_weighting(benchmark, study):
    rows = benchmark.pedantic(_sweep, args=(study,), rounds=1, iterations=1)
    print()
    print(render_rows(rows))
    by_key = {row["processor"]: row for row in rows}
    # Many-context machines gain from equal weighting; single-core
    # machines are roughly neutral.
    assert float(by_key["i7 (45)"]["Avg_w/Avg_b"]) > 1.05
    assert abs(float(by_key["Pentium4 (130)"]["Avg_w/Avg_b"]) - 1.0) < 0.06
