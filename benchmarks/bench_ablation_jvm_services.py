"""Ablation: JVM service parallelism on versus off.

Isolates Workload Finding 1's mechanism by rebuilding the engine with
runtime services disabled: the single-threaded Java CMP speedups of
Fig. 6 must vanish.  Beyond-paper extension (DESIGN.md §7).
Run with ``pytest benchmarks/bench_ablation_jvm_services.py --benchmark-only``.
"""

from repro.execution.engine import ExecutionEngine
from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import Configuration
from repro.reporting.tables import render_rows
from repro.workloads.catalog import single_threaded_java


def _sweep(_study):
    with_services = ExecutionEngine()
    without_services = ExecutionEngine(jvm_services_enabled=False)
    one = Configuration(CORE_I7_45, 1, 1, 2.66)
    two = Configuration(CORE_I7_45, 2, 1, 2.66)
    rows = []
    for bench in single_threaded_java():
        on = (
            with_services.ideal(bench, one).seconds.value
            / with_services.ideal(bench, two).seconds.value
        )
        off = (
            without_services.ideal(bench, one).seconds.value
            / without_services.ideal(bench, two).seconds.value
        )
        rows.append(
            {
                "benchmark": bench.name,
                "cmp_gain_services_on": round(on, 3),
                "cmp_gain_services_off": round(off, 3),
            }
        )
    return rows


def test_jvm_services(benchmark, study):
    rows = benchmark.pedantic(_sweep, args=(study,), rounds=1, iterations=1)
    print()
    print(render_rows(rows))
    on = [float(r["cmp_gain_services_on"]) for r in rows]
    off = [float(r["cmp_gain_services_off"]) for r in rows]
    assert sum(on) / len(on) > 1.05  # Workload Finding 1 present
    assert all(abs(v - 1.0) < 0.01 for v in off)  # ...and gone without services
