"""Throughput benchmark for the projection frontier search (ISSUE 10).

Runs the same seeded frontier search twice on fresh studies — once with
the scalar invocation loop forced, once on the compiled-kernel path — and
always verifies the two frontier datasets are byte-identical (the
subsystem's core guarantee) before comparing wall-clock.

The search is exactly the workload the vectorized kernels were built for:
hundreds of distinct synthesized cluster configurations, eight benchmarks
each, no cache hits on a cold study.  The kernel path's advantage is
therefore the *cold-sweep* ratio, which is smaller than the warm-sweep
ratio ``bench_campaign_sweep`` pins (compilation happens inside the timed
region here) but still must clearly beat scalar.

Environment:

* ``REPRO_BENCH_MIN_PROJECTION_SPEEDUP`` — when set, assert at least this
  vectorized-over-scalar speedup (CI pins ``1.5``).  Unset, report only.

Run directly:
``PYTHONPATH=src python -m pytest -q -s benchmarks/bench_projection_search.py``
(kept out of the tier-1 ``testpaths`` so machine-dependent timing never
blocks unrelated changes).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.normalization import References  # noqa: E402
from repro.core.study import Study  # noqa: E402
from repro.execution.engine import default_engine  # noqa: E402
from repro.projection import search  # noqa: E402

_REPS = 3
_SAMPLES = 48
_NODES = (22, 14, 10, 7)


def _timed_search(references: References, vectorize: bool) -> tuple[float, bytes]:
    study = Study(references=references, vectorize=vectorize)
    start = time.perf_counter()
    dataset = search(study=study, nodes=_NODES, samples=_SAMPLES, seed=0)
    elapsed = time.perf_counter() - start
    return elapsed, dataset.to_json_bytes()


def test_vectorized_vs_scalar_search():
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_PROJECTION_SPEEDUP", "0"))

    references = References(default_engine())
    # Warm shared process-wide state (instruction calibration, protocol
    # lookups, candidate synthesis caches); each timed side still pays
    # its own study, meter, and kernel-compilation costs — the cold-sweep
    # shape a fresh `repro project` run has.
    _timed_search(references, vectorize=True)

    scalar_times: list[float] = []
    vector_times: list[float] = []
    scalar_bytes = vector_bytes = None
    for _ in range(_REPS):
        elapsed, scalar_bytes = _timed_search(references, vectorize=False)
        scalar_times.append(elapsed)
        elapsed, vector_bytes = _timed_search(references, vectorize=True)
        vector_times.append(elapsed)

    assert scalar_bytes == vector_bytes, (
        "vectorized frontier search diverged from the scalar dataset"
    )

    best_scalar = min(scalar_times)
    best_vector = min(vector_times)
    speedup = best_scalar / best_vector
    print(
        f"\nprojection search ({len(_NODES)} nodes x {_SAMPLES} samples): "
        f"scalar {best_scalar:.2f}s, vectorized {best_vector:.2f}s -> "
        f"{speedup:.2f}x (datasets byte-identical)"
    )
    if min_speedup > 0:
        assert speedup >= min_speedup, (
            f"speedup {speedup:.2f}x below the "
            f"REPRO_BENCH_MIN_PROJECTION_SPEEDUP={min_speedup:g}x floor"
        )
