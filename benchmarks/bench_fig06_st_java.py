"""Fig. 6: CMP impact for single-threaded Java.

Regenerates the artifact with the paper's full measurement protocol and
prints the paper-versus-measured rows.  Run with
``pytest benchmarks/bench_fig06_st_java.py --benchmark-only``.
"""

from _harness import regenerate


def test_fig6(benchmark, study):
    result = regenerate(benchmark, study, "fig6")
    assert len(result.rows) == 10
