"""Fig. 5: effect of SMT (two threads versus one).

Regenerates the artifact with the paper's full measurement protocol and
prints the paper-versus-measured rows.  Run with
``pytest benchmarks/bench_fig05_smt.py --benchmark-only``.
"""

from _harness import regenerate
from repro.experiments import fig5_smt
from repro.reporting.bars import bar_chart


def test_fig5(benchmark, study):
    result = regenerate(benchmark, study, "fig5")
    assert len([r for r in result.rows if "performance" in r]) == 4
    resolved = fig5_smt.effects(study)
    if isinstance(resolved, tuple):
        resolved = {e.label: e for e in resolved}
    for metric in ("performance", "power", "energy"):
        print(f"\n{metric} (bars around 1.0):")
        print(bar_chart(
            {label: getattr(e, metric) for label, e in resolved.items()},
            baseline=1.0,
        ))
