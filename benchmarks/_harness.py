"""Shared helper for the per-artifact benchmark modules."""

from __future__ import annotations

from repro.core.study import Study
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import run_experiment
from repro.reporting.tables import render_experiment


def regenerate(benchmark, study: Study, experiment_id: str) -> ExperimentResult:
    """Run one experiment under the benchmark fixture and print its rows.

    The first (warm-up) call performs the measurements; the timed rounds
    then reflect the analysis cost over the shared dataset, exactly like
    re-deriving a figure from the paper's published CSV.
    """
    result = benchmark(run_experiment, experiment_id, study)
    print()
    print(render_experiment(result))
    return result
