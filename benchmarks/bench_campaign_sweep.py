"""Throughput benchmark for the parallel sweep executor (ISSUE 4).

Runs the paper's stock campaign — every benchmark over the eight stock
configurations, full repetition protocol — once sequentially and once
through the process-pool executor, reports the wall-clock speedup, and
always verifies the two datasets are record-for-record identical (the
executor's core guarantee; a speedup that changed the data would be a
bug, not a win).

Two environment variables shape the run:

* ``REPRO_BENCH_JOBS`` — worker count for the parallel side (default:
  the machine's CPU count);
* ``REPRO_BENCH_MIN_SPEEDUP`` — when set, the benchmark *asserts* at
  least this speedup (e.g. ``2.0`` on a 4-core CI runner).  Unset, it
  reports and passes: single-core containers run the pool oversubscribed
  and legitimately see < 1x, but the equivalence check still bites.

``test_vectorized_vs_scalar`` is the compiled-kernel microbenchmark
(ISSUE 9): a *single-process* warm stock sweep on the scalar path versus
the compiled-kernel path, datasets verified identical, with an optional
``REPRO_BENCH_MIN_KERNEL_SPEEDUP`` floor (CI pins ``3.0``).  Unlike the
pool speedup this one is machine-independent in kind — it is pure
Python-versus-numpy dispatch on one core — so the floor is meaningful
even on small runners.

Run directly:
``PYTHONPATH=src python -m pytest -q -s benchmarks/bench_campaign_sweep.py``
(kept out of the tier-1 ``testpaths`` so machine-dependent timing never
blocks unrelated changes).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.normalization import References  # noqa: E402
from repro.core.study import Study  # noqa: E402
from repro.execution.engine import default_engine  # noqa: E402
from repro.hardware.configurations import stock_configurations  # noqa: E402
from repro.workloads.catalog import BENCHMARKS  # noqa: E402

#: Timed sweeps per side; the best of each side is compared, so one
#: preempted sweep cannot sink (or fake) the speedup.
_REPS = 3


def _timed_sweep(
    references: References, jobs, vectorize=None
) -> tuple[float, list[dict]]:
    """One fresh-study sweep; returns (seconds, result records)."""
    study = Study(
        references=references, invocation_scale=1.0, vectorize=vectorize
    )
    configs = stock_configurations()
    start = time.perf_counter()
    results = study.run(configs, BENCHMARKS, jobs=jobs)
    elapsed = time.perf_counter() - start
    return elapsed, [result.as_record() for result in results]


def test_parallel_sweep_throughput():
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or (os.cpu_count() or 1)
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "0"))

    references = References(default_engine())
    # Warm the process-wide state the timed sides share: instruction
    # calibration, meter construction, protocol lookups.  Workers pay
    # their own per-process warm-up inside the timed parallel sweep —
    # that cost is real and belongs in the number.
    _timed_sweep(references, jobs=None)

    sequential_times: list[float] = []
    parallel_times: list[float] = []
    sequential_records = parallel_records = None
    for _ in range(_REPS):
        elapsed, sequential_records = _timed_sweep(references, jobs=None)
        sequential_times.append(elapsed)
        elapsed, parallel_records = _timed_sweep(references, jobs=jobs)
        parallel_times.append(elapsed)

    assert parallel_records == sequential_records, (
        "parallel sweep diverged from the sequential dataset"
    )

    best_seq = min(sequential_times)
    best_par = min(parallel_times)
    speedup = best_seq / best_par
    pairs = len(stock_configurations()) * len(BENCHMARKS)
    print(
        f"\n{pairs} pairs, full protocol: sequential {best_seq:.2f}s, "
        f"jobs={jobs} {best_par:.2f}s -> {speedup:.2f}x "
        f"(datasets identical)"
    )
    if min_speedup > 0:
        assert speedup >= min_speedup, (
            f"speedup {speedup:.2f}x below the "
            f"REPRO_BENCH_MIN_SPEEDUP={min_speedup:g}x floor at jobs={jobs}"
        )


def test_vectorized_vs_scalar():
    """Warm single-process stock sweep: compiled kernels versus the
    scalar invocation loop, byte-identical datasets required."""
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_KERNEL_SPEEDUP", "0"))

    references = References(default_engine())
    # Warm everything both sides share — instruction calibration, the
    # execution-plan cache, meters — *and* each side's own warm state:
    # the kernel cache (with materialised draws) for the vectorized path.
    # A warm sweep is the steady-state shape of a long-lived campaign
    # server, and it is the regime the >=3x floor is declared for.
    _timed_sweep(references, jobs=None, vectorize=False)
    _timed_sweep(references, jobs=None, vectorize=True)

    scalar_times: list[float] = []
    vector_times: list[float] = []
    scalar_records = vector_records = None
    for _ in range(_REPS):
        elapsed, scalar_records = _timed_sweep(
            references, jobs=None, vectorize=False
        )
        scalar_times.append(elapsed)
        elapsed, vector_records = _timed_sweep(
            references, jobs=None, vectorize=True
        )
        vector_times.append(elapsed)

    assert vector_records == scalar_records, (
        "vectorized sweep diverged from the scalar dataset"
    )

    best_scalar = min(scalar_times)
    best_vector = min(vector_times)
    speedup = best_scalar / best_vector
    pairs = len(stock_configurations()) * len(BENCHMARKS)
    print(
        f"\n{pairs} pairs, full protocol, single process: scalar "
        f"{best_scalar:.2f}s, kernels {best_vector:.2f}s -> {speedup:.2f}x "
        f"(datasets identical)"
    )
    if min_speedup > 0:
        assert speedup >= min_speedup, (
            f"kernel speedup {speedup:.2f}x below the "
            f"REPRO_BENCH_MIN_KERNEL_SPEEDUP={min_speedup:g}x floor"
        )
