"""The paper's thirteen findings, evaluated against the reproduction.

Prints each WORKLOAD/ARCHITECTURE finding with its supporting evidence.
Run with ``pytest benchmarks/bench_findings.py --benchmark-only``.
"""

from repro.experiments.findings import evaluate_all


def test_findings(benchmark, study):
    reports = benchmark.pedantic(evaluate_all, args=(study,), rounds=1, iterations=1)
    print()
    for report in reports:
        status = "HOLDS" if report.holds else "FAILS"
        print(f"{report.finding_id:3s} {status}: {report.statement}")
        print(f"     evidence: {report.evidence}")
    assert sum(r.holds for r in reports) == 13
