"""Fig. 12: energy/performance Pareto frontiers at 45nm.

Regenerates the artifact with the paper's full measurement protocol and
prints the paper-versus-measured rows.  Run with
``pytest benchmarks/bench_fig12_pareto.py --benchmark-only``.
"""

from _harness import regenerate
from repro.reporting import figures


def test_fig12(benchmark, study):
    result = regenerate(benchmark, study, "fig12")
    print()
    print(figures.figure12(study))
    assert len(result.rows) == 5
