"""Overhead budget for the observability layer (ISSUE 1 acceptance).

Interleaves individual uncached ``Study.measure`` calls between two
studies over the same engine — one with every instrument live (metrics +
tracing enabled) and one with the uninstrumented-equivalent configuration
(study-level telemetry skipped, global metrics switch off, tracer
disabled) — and asserts the median per-pair ratio stays within 3%.

Pairing at the granularity of a single ``measure`` call is what makes the
number stable on noisy shared hosts: the two sides of each ratio run
microseconds apart, so thermal drift, governor changes, and page-cache
state cancel inside the pair instead of biasing a whole sweep; the order
within each pair alternates so neither side systematically pays the
cold-branch cost; and the median over ~60 pairs discards the scheduler
outliers that make sweep-level comparisons swing by tens of percent.

Run directly: ``PYTHONPATH=src python -m pytest -q benchmarks/bench_obs_overhead.py``
(kept out of the tier-1 ``testpaths`` so timing noise on shared CI
runners never blocks unrelated changes).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.normalization import References  # noqa: E402
from repro.core.study import Study  # noqa: E402
from repro.execution.engine import default_engine  # noqa: E402
from repro.hardware.catalog import ATOM_45, CORE_I7_45  # noqa: E402
from repro.hardware.config import stock  # noqa: E402
from repro.obs import metrics  # noqa: E402
from repro.obs.tracing import default_tracer  # noqa: E402
from repro.workloads.catalog import BENCHMARKS  # noqa: E402

#: The acceptance budget: instrumentation may cost at most this much.
MAX_OVERHEAD = 0.03

#: Every other benchmark over the two extreme machines gives ~60 pairs —
#: enough for a stable median without a minutes-long run.
_PAIR_STRIDE = 2

#: Timed passes per pair; each pass contributes one ratio, so a single
#: preempted invocation poisons one ratio out of pairs x passes.
_REPS = 3

#: A shared host can inflate a whole attempt's median (load landing
#: disproportionately on one side's runs), so the budget holds if any
#: attempt comes in under it; the attempts re-measure from scratch.
_ATTEMPTS = 3


def _timed_measure(study: Study, benchmark, config, instrument: bool) -> float:
    """One uncached measure under either configuration, timed.

    The study's cache is cleared first, so repeated calls re-measure."""
    tracer = default_tracer()
    metrics.set_enabled(instrument)
    if instrument:
        tracer.enable()
    else:
        tracer.disable()
    try:
        study.clear_cache()
        start = time.perf_counter()
        study.measure(benchmark, config)
        return time.perf_counter() - start
    finally:
        metrics.set_enabled(True)
        tracer.disable()


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _measure_overhead(baseline: Study, instrumented: Study, pairs) -> tuple[float, float]:
    """One full overhead estimate: (median overhead, median base seconds)."""
    pass_ratios: list[list[float]] = [[] for _ in pairs]
    base_times: list[float] = []
    for rep in range(_REPS):
        for index, (bench, config) in enumerate(pairs):
            # ABBA within each pass: both sides run twice back-to-back
            # with the order flipped per pair and per pass.  Summing a
            # side's two runs centres both sums on the same midpoint in
            # time, so linear drift (thermal, governor) cancels exactly,
            # and each side gets one warm slot.
            instrumented_first = (index + rep) % 2 == 0
            # One untimed run first: the quartet's opening slot would
            # otherwise face cold benchmark-specific state (the previous
            # quartet measured a different pair), and with an odd pass
            # count that cold cost lands unevenly across the two orders.
            _timed_measure(baseline, bench, config, instrument=False)
            total = {True: 0.0, False: 0.0}
            order = (
                (True, False, False, True)
                if instrumented_first
                else (False, True, True, False)
            )
            for side in order:
                study = instrumented if side else baseline
                total[side] += _timed_measure(
                    study, bench, config, instrument=side
                )
            pass_ratios[index].append(total[True] / total[False])
            base_times.append(total[False] / 2.0)
    default_tracer().clear()

    # Median per pair (one preempted pass cannot poison its pair), then
    # median across pairs.
    ratios = [_median(per_pair) for per_pair in pass_ratios]
    return _median(ratios) - 1.0, _median(base_times)


def test_instrumentation_overhead_under_budget():
    references = References(default_engine())
    baseline = Study(references=references, instrument=False)
    instrumented = Study(references=references, instrument=True)
    configs = (stock(CORE_I7_45), stock(ATOM_45))
    pairs = [
        (bench, config)
        for config in configs
        for bench in BENCHMARKS[::_PAIR_STRIDE]
    ]

    # Warm every process-wide cache (instruction calibration, meter
    # construction and calibration) so the timed passes compare
    # steady-state measurement cost only.
    for bench, config in pairs:
        baseline.measure(bench, config)

    overheads: list[float] = []
    for attempt in range(_ATTEMPTS):
        overhead, base = _measure_overhead(baseline, instrumented, pairs)
        overheads.append(overhead)
        print(
            f"\nattempt {attempt + 1}: {len(pairs)} pairs x {_REPS} passes, "
            f"median measure {base * 1e3:.2f} ms, "
            f"median overhead {overhead * 100:+.2f}%"
        )
        if overhead <= MAX_OVERHEAD:
            break

    assert min(overheads) <= MAX_OVERHEAD, (
        f"instrumentation overhead {min(overheads) * 100:.2f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% budget in {_ATTEMPTS} attempts "
        f"(all: {[f'{o * 100:+.2f}%' for o in overheads]})"
    )
