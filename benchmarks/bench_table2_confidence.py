"""Table 2: aggregate 95% confidence intervals for time and power.

Runs the paper's full repetition protocol (3/5 native executions, 20 JVM
invocations) over the entire 45-configuration space and aggregates the
relative confidence intervals per workload group.  This is the harness's
heaviest artifact — it measures every run in the study.
Run with ``pytest benchmarks/bench_table2_confidence.py --benchmark-only``.
"""

from _harness import regenerate
from repro.experiments.table2_confidence import run as run_table2
from repro.hardware.configurations import all_configurations
from repro.reporting.tables import render_experiment


def test_table2(benchmark, study):
    result = regenerate(benchmark, study, "table2")
    average = result.row_for("group", "Average")
    assert float(average["time_avg"]) < 0.03
    assert float(average["power_avg"]) < 0.03


def test_table2_full_sweep(benchmark, study):
    """The paper's aggregation over all 45 configurations."""
    result = benchmark.pedantic(
        run_table2,
        args=(study,),
        kwargs={"configurations": all_configurations()},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_experiment(result))
    assert float(result.row_for("group", "Average")["time_avg"]) < 0.03
