"""Table 3: the eight processors.

Regenerates the artifact with the paper's full measurement protocol and
prints the paper-versus-measured rows.  Run with
``pytest benchmarks/bench_table3_processors.py --benchmark-only``.
"""

from _harness import regenerate


def test_table3(benchmark, study):
    result = regenerate(benchmark, study, "table3")
    assert len(result.rows) == 8
