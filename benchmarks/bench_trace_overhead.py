"""End-to-end overhead budget for request tracing (ISSUE 6 acceptance).

Drives ``CampaignServer.handle`` directly — no sockets — with the study
cache cleared before every request, so each ``POST /measure`` exercises
the whole pipeline (admission, scheduling, a real measurement, the
store write, and the response encode).  Each request runs twice with
the default tracer armed and twice disarmed in ABBA order, and the
median per-request ratio must stay within 5%: tracing a request may
not cost more than a twentieth of serving it.

The pairing discipline is the same as ``bench_obs_overhead.py``: both
sides of a ratio run microseconds apart so host noise cancels inside
the pair, the order alternates so neither side systematically pays the
cold-branch cost, and the budget holds if any attempt lands under it.

Run directly:
``PYTHONPATH=src python -m pytest -q benchmarks/bench_trace_overhead.py``
(kept out of the tier-1 ``testpaths`` so timing noise on shared CI
runners never blocks unrelated changes).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import sys
import time
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.normalization import References  # noqa: E402
from repro.core.study import Study  # noqa: E402
from repro.execution.engine import default_engine  # noqa: E402
from repro.obs.tracing import default_tracer  # noqa: E402
from repro.service.server import CampaignServer, Request  # noqa: E402

#: The acceptance budget: tracing a request may cost at most this much
#: of serving it end to end.
MAX_OVERHEAD = 0.05

#: (benchmark, processor) cells cycled across requests.  The slowest
#: cells in the catalog (tens of ms end to end at full scale), so the
#: executor wake-up jitter both sides pay stays small relative to the
#: measured work and the ratio's noise floor sits well under the budget.
_CELLS = (
    ("pjbb2005", "atom_45"),
    ("tomcat", "atom_45"),
    ("h2", "atom_45"),
    ("eclipse", "i7_45"),
    ("pmd", "atom_45"),
    ("sunflow", "atom_45"),
)

#: Timed passes per cell; each pass contributes one ratio.
_REPS = 5

#: A shared host can inflate a whole attempt's median, so the budget
#: holds if any attempt comes in under it.
_ATTEMPTS = 3

_client = itertools.count()


def _request(benchmark: str, processor: str) -> Request:
    return Request(
        method="POST",
        path="/measure",
        query={},
        headers={"x-client-id": f"bench-{next(_client)}"},
        body=json.dumps(
            {"benchmark": benchmark, "processor": processor}
        ).encode("utf-8"),
        peer="bench",
    )


def _timed_handle(
    loop: asyncio.AbstractEventLoop,
    server: CampaignServer,
    study: Study,
    cell: tuple[str, str],
    traced: bool,
) -> float:
    """One uncached end-to-end request under either configuration."""
    tracer = default_tracer()
    if traced:
        tracer.enable()
    else:
        tracer.disable()
    try:
        study.clear_cache()
        request = _request(*cell)
        start = time.perf_counter()
        response = loop.run_until_complete(server.handle(request))
        elapsed = time.perf_counter() - start
        assert response.status == 200, response.body
        return elapsed
    finally:
        tracer.disable()


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _measure_overhead(
    loop: asyncio.AbstractEventLoop, server: CampaignServer, study: Study
) -> tuple[float, float]:
    """One full overhead estimate: (median overhead, median base secs)."""
    pass_ratios: list[list[float]] = [[] for _ in _CELLS]
    base_times: list[float] = []
    for rep in range(_REPS):
        for index, cell in enumerate(_CELLS):
            traced_first = (index + rep) % 2 == 0
            # One untimed run absorbs benchmark-specific cold state left
            # by the previous quartet.
            _timed_handle(loop, server, study, cell, traced=False)
            total = {True: 0.0, False: 0.0}
            order = (
                (True, False, False, True)
                if traced_first
                else (False, True, True, False)
            )
            for side in order:
                total[side] += _timed_handle(
                    loop, server, study, cell, traced=side
                )
            pass_ratios[index].append(total[True] / total[False])
            base_times.append(total[False] / 2.0)
    default_tracer().clear()

    ratios = [_median(per_cell) for per_cell in pass_ratios]
    return _median(ratios) - 1.0, _median(base_times)


def test_request_tracing_overhead_under_budget():
    # Full protocol scale — what `repro serve` runs outside --quick —
    # keeps the per-request denominator representative of real service
    # load rather than of the test fixtures' scaled-down measurements.
    study = Study(references=References(default_engine()))
    server = CampaignServer(study=study)
    tracer = default_tracer()
    was_enabled = tracer.is_enabled
    loop = asyncio.new_event_loop()
    try:
        loop.run_until_complete(server.scheduler.start())

        # Warm every process-wide cache (instruction calibration, meter
        # construction, scheduler dispatch path) before timing.
        for cell in _CELLS:
            _timed_handle(loop, server, study, cell, traced=True)

        overheads: list[float] = []
        for attempt in range(_ATTEMPTS):
            overhead, base = _measure_overhead(loop, server, study)
            overheads.append(overhead)
            print(
                f"\nattempt {attempt + 1}: {len(_CELLS)} cells x "
                f"{_REPS} passes, median request {base * 1e3:.2f} ms, "
                f"median overhead {overhead * 100:+.2f}%"
            )
            if overhead <= MAX_OVERHEAD:
                break
    finally:
        loop.run_until_complete(server.shutdown())
        loop.close()
        if was_enabled:
            tracer.enable()
        else:
            tracer.disable()
        tracer.clear()

    assert min(overheads) <= MAX_OVERHEAD, (
        f"request-tracing overhead {min(overheads) * 100:.2f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% budget in {_ATTEMPTS} attempts "
        f"(all: {[f'{o * 100:+.2f}%' for o in overheads]})"
    )
