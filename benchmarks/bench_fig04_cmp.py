"""Fig. 4: effect of CMP (two cores versus one).

Regenerates the artifact with the paper's full measurement protocol and
prints the paper-versus-measured rows.  Run with
``pytest benchmarks/bench_fig04_cmp.py --benchmark-only``.
"""

from _harness import regenerate
from repro.experiments import fig4_cmp
from repro.reporting.bars import bar_chart


def test_fig4(benchmark, study):
    result = regenerate(benchmark, study, "fig4")
    assert any("performance" in r for r in result.rows)
    resolved = fig4_cmp.effects(study)
    if isinstance(resolved, tuple):
        resolved = {e.label: e for e in resolved}
    for metric in ("performance", "power", "energy"):
        print(f"\n{metric} (bars around 1.0):")
        print(bar_chart(
            {label: getattr(e, metric) for label, e in resolved.items()},
            baseline=1.0,
        ))
