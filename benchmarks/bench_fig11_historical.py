"""Fig. 11: historical power/performance overview.

Regenerates the artifact with the paper's full measurement protocol and
prints the paper-versus-measured rows.  Run with
``pytest benchmarks/bench_fig11_historical.py --benchmark-only``.
"""

from _harness import regenerate
from repro.reporting import figures


def test_fig11(benchmark, study):
    result = regenerate(benchmark, study, "fig11")
    print()
    print(figures.figure11(study))
    assert len(result.rows) == 8
