"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one paper artifact (table or figure)
under pytest-benchmark and prints the paper-versus-measured rows.  All
benches share one full-protocol study whose cache mirrors the paper's
single physical dataset: the first artifact to need a configuration pays
for its measurement, later ones reuse it.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.study import Study  # noqa: E402


@pytest.fixture(scope="session")
def study() -> Study:
    """Full paper-protocol study shared across every bench."""
    return Study(invocation_scale=1.0)
