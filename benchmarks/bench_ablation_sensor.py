"""Ablation: how much measurement fidelity the sensor pipeline costs.

Sweeps the logger's sampling rate and compares the measured average power
against the ground truth the engine produces, validating that the paper's
50 Hz / 10-bit setup sits comfortably inside the Table 2 error envelope.
Beyond-paper extension (DESIGN.md §7).
Run with ``pytest benchmarks/bench_ablation_sensor.py --benchmark-only``.
"""

import numpy as np

from repro.execution.trace import trace_of
from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import stock
from repro.measurement.calibration import calibrate
from repro.measurement.logger import DataLogger
from repro.measurement.sensor import sensor_for_processor
from repro.measurement.supply import ProcessorSupply
from repro.reporting.tables import render_rows
from repro.workloads.catalog import by_group
from repro.workloads.benchmark import Group

RATES_HZ = (5.0, 50.0, 500.0)


def _sweep(study):
    engine = study.engine
    spec = CORE_I7_45
    sensor = sensor_for_processor(spec.key, spec.tdp_w)
    supply = ProcessorSupply(spec.key)
    calibration = calibrate(sensor)
    benchmarks = by_group(Group.JAVA_SCALABLE) + by_group(Group.NATIVE_SCALABLE)[:5]
    rows = []
    for rate in RATES_HZ:
        logger = DataLogger(sensor=sensor, supply=supply, rate_hz=rate)
        errors = []
        for bench in benchmarks:
            execution = engine.ideal(bench, stock(spec))
            trace = trace_of(execution)
            logged = logger.log(trace, run_salt=f"ablation/{rate}/{bench.name}")
            amps = (logged.codes.astype(float) - calibration.fit.intercept) / calibration.fit.slope
            measured = float(np.mean(amps) * supply.nominal.value)
            truth = execution.average_power.value
            errors.append(abs(measured - truth) / truth)
        rows.append(
            {
                "rate_hz": rate,
                "mean_abs_error": round(float(np.mean(errors)), 4),
                "max_abs_error": round(float(np.max(errors)), 4),
            }
        )
    return rows


def test_sensor_fidelity(benchmark, study):
    rows = benchmark.pedantic(_sweep, args=(study,), rounds=1, iterations=1)
    print()
    print(render_rows(rows))
    by_rate = {row["rate_hz"]: row for row in rows}
    # The paper's 50 Hz setup stays within ~2%; cranking the rate to
    # 500 Hz barely helps (noise averaging already saturates).
    assert float(by_rate[50.0]["mean_abs_error"]) < 0.02
    assert float(by_rate[500.0]["mean_abs_error"]) < 0.02
