"""Fig. 7: impact of clock scaling.

Regenerates the artifact with the paper's full measurement protocol and
prints the paper-versus-measured rows.  Run with
``pytest benchmarks/bench_fig07_clock.py --benchmark-only``.
"""

from _harness import regenerate
from repro.reporting import figures


def test_fig7(benchmark, study):
    result = regenerate(benchmark, study, "fig7")
    print()
    print(figures.figure7c(study))
    assert any("energy_per_doubling" in r for r in result.rows)
