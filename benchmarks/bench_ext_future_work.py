"""Extensions: the future work the paper names, made concrete.

Regenerates the five beyond-paper experiments: JVM vendor comparison
(§2.2), icc-vs-gcc (§2.1), heap sensitivity, whole-system measurement
contrast (§2.5/§5), and Turbo Boost thermal headroom (§3.6).
Run with ``pytest benchmarks/bench_ext_future_work.py --benchmark-only``.
"""

import pytest

from _harness import regenerate
from repro.experiments.registry import EXTENSIONS


@pytest.mark.parametrize("experiment_id", sorted(EXTENSIONS))
def test_extension(benchmark, study, experiment_id):
    result = regenerate(benchmark, study, experiment_id)
    assert len(result.rows) > 0


def test_jvm_vendor_claims(benchmark, study):
    """The paper's §2.2 observations hold on the vendor profiles."""
    from repro.experiments.ext_jvm_vendors import run

    result = benchmark.pedantic(run, args=(study,), rounds=1, iterations=1)
    rows = {r["jvm"]: r for r in result.rows}
    for name, row in rows.items():
        mean = float(row["mean_performance_vs_hotspot"])
        assert abs(mean - 1.0) < 0.05, name  # average similar
        assert abs(float(row["mean_power_vs_hotspot"]) - 1.0) < 0.10, name
    jrockit = rows["JRockit R28.0.0"]
    assert float(jrockit["max_benchmark_ratio"]) > 1.1  # individuals vary
    assert float(jrockit["min_benchmark_ratio"]) < 0.95
