"""Analysis drill-downs: CPI stacks, power attribution, TDP regression.

The mechanisms behind the paper's numbers, rendered as stacked bars and
a regression summary.
Run with ``pytest benchmarks/bench_analysis.py --benchmark-only``.
"""

from repro.analysis.cpi_stacks import across_machines, render as render_cpi
from repro.analysis.power_attribution import attribute, render as render_power
from repro.analysis.tdp_regression import regress
from repro.hardware.catalog import PROCESSORS
from repro.hardware.config import stock
from repro.workloads.catalog import benchmark as lookup


def test_cpi_stacks_across_machines(benchmark, study):
    def build():
        return {
            name: across_machines(lookup(name), PROCESSORS)
            for name in ("mcf", "hmmer", "xalan")
        }

    stacks = benchmark.pedantic(build, rounds=1, iterations=1)
    for name, machine_stacks in stacks.items():
        print(f"\nCPI stack: {name}")
        print(render_cpi(machine_stacks))
    mcf_i7 = next(s for s in stacks["mcf"] if s.processor == "i7 (45)")
    assert mcf_i7.breakdown.memory > mcf_i7.breakdown.base


def test_power_attribution(benchmark, study):
    engine = study.engine
    xalan = lookup("xalan")

    def build():
        return {
            spec.label: attribute(engine.ideal(xalan, stock(spec)))
            for spec in PROCESSORS
        }

    attributions = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\nPower attribution (xalan, stock):")
    print(render_power(attributions))
    assert attributions["i7 (45)"].share("core_active") > 0.4


def test_tdp_regression(benchmark, study):
    regression = benchmark.pedantic(regress, args=(study,), rounds=1, iterations=1)
    print(f"\nTDP regression: watts = {regression.fit.slope:.2f} x TDP "
          f"+ {regression.fit.intercept:.1f}, R^2 = {regression.r_squared:.3f}")
    for label, tdp, watts, ratio in regression.machines:
        print(f"  {label:16s} TDP {tdp:5.0f}W  measured {watts:5.1f}W  "
              f"ratio {ratio:4.2f}")
    assert regression.fit.slope > 0
    assert regression.ratio_spread > 1.5
