"""Table 1: benchmark groups and reference times.

Regenerates the artifact with the paper's full measurement protocol and
prints the paper-versus-measured rows.  Run with
``pytest benchmarks/bench_table1_catalog.py --benchmark-only``.
"""

from _harness import regenerate


def test_table1(benchmark, study):
    result = regenerate(benchmark, study, "table1")
    assert len(result.rows) == 61
