"""Table 5: Pareto-efficient 45nm processor configurations.

Expands the four 45nm processors into 29 configurations, measures every
benchmark on each, and reports the Pareto-efficient set per workload
grouping next to the paper's columns.
Run with ``pytest benchmarks/bench_table5_pareto.py --benchmark-only``.
"""

from _harness import regenerate


def test_table5(benchmark, study):
    result = regenerate(benchmark, study, "table5")
    assert len(result.rows) == 5
    for row in result.rows:
        assert int(row["count"]) >= 2
